//! The AES S-box and inverse S-box, computed from first principles.
//!
//! The S-box maps each byte to the affine transform of its multiplicative
//! inverse in GF(2^8). We compute it rather than hard-coding it, and the
//! test suite verifies the computed values against the FIPS-197 published
//! constants (spot-checked corners plus full-table invariants).
//!
//! In the paper's state classification (Table 4), the S-box and inverse
//! S-box are *access-protected* state: their contents are public, but the
//! sequence of indices an encryption touches leaks key material to a bus
//! monitor (Tromer, Osvik, Shamir — "Efficient cache attacks on AES").

use crate::gf;
use std::sync::OnceLock;

/// Size in bytes of one S-box table.
pub const SBOX_SIZE: usize = 256;

/// Apply the AES affine transformation to a byte (after inversion).
fn affine(q: u8) -> u8 {
    q ^ q.rotate_left(1) ^ q.rotate_left(2) ^ q.rotate_left(3) ^ q.rotate_left(4) ^ 0x63
}

/// Compute the forward S-box table.
#[must_use]
pub fn compute_sbox() -> [u8; SBOX_SIZE] {
    let mut table = [0u8; SBOX_SIZE];
    for (i, slot) in table.iter_mut().enumerate() {
        *slot = affine(gf::inv(i as u8));
    }
    table
}

/// Compute the inverse S-box table (used by decryption's InvSubBytes).
#[must_use]
pub fn compute_inv_sbox() -> [u8; SBOX_SIZE] {
    let sbox = compute_sbox();
    let mut inv = [0u8; SBOX_SIZE];
    for (i, &v) in sbox.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

/// Shared, lazily-computed forward S-box.
///
/// The returned reference is to a process-wide table; callers that need
/// their state placement controlled (AES On SoC) must instead copy the
/// table into their [`crate::tracked::StateStore`].
#[must_use]
pub fn sbox() -> &'static [u8; SBOX_SIZE] {
    static SBOX: OnceLock<[u8; SBOX_SIZE]> = OnceLock::new();
    SBOX.get_or_init(compute_sbox)
}

/// Shared, lazily-computed inverse S-box.
#[must_use]
pub fn inv_sbox() -> &'static [u8; SBOX_SIZE] {
    static INV: OnceLock<[u8; SBOX_SIZE]> = OnceLock::new();
    INV.get_or_init(compute_inv_sbox)
}

/// Substitute one byte through the forward S-box.
#[must_use]
pub fn sub_byte(b: u8) -> u8 {
    sbox()[b as usize]
}

/// Substitute one byte through the inverse S-box.
#[must_use]
pub fn inv_sub_byte(b: u8) -> u8 {
    inv_sbox()[b as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known values from the FIPS-197 Figure 7 S-box table.
    const KNOWN: &[(u8, u8)] = &[
        (0x00, 0x63),
        (0x01, 0x7C),
        (0x10, 0xCA),
        (0x53, 0xED),
        (0x7F, 0xD2),
        (0x80, 0xCD),
        (0xAA, 0xAC),
        (0xFF, 0x16),
    ];

    #[test]
    fn sbox_matches_published_constants() {
        let sb = sbox();
        for &(input, expected) in KNOWN {
            assert_eq!(sb[input as usize], expected, "sbox[{input:#04x}]");
        }
    }

    #[test]
    fn sbox_is_a_permutation() {
        let sb = sbox();
        let mut seen = [false; 256];
        for &v in sb.iter() {
            assert!(!seen[v as usize], "duplicate S-box output {v:#04x}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        let sb = sbox();
        let inv = inv_sbox();
        for i in 0..=255u8 {
            assert_eq!(inv[sb[i as usize] as usize], i);
            assert_eq!(sb[inv[i as usize] as usize], i);
        }
    }

    #[test]
    fn sbox_has_no_fixed_points() {
        // A classical design property of the AES S-box: S(a) != a and
        // S(a) != complement(a) for all a.
        let sb = sbox();
        for i in 0..=255u8 {
            assert_ne!(sb[i as usize], i);
            assert_ne!(sb[i as usize], !i);
        }
    }
}
