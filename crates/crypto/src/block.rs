//! Single-block AES encryption and decryption.
//!
//! Two implementations are provided:
//!
//! * [`AesRef`] — a straight transcription of FIPS-197 (SubBytes,
//!   ShiftRows, MixColumns as separate steps). Slow, but obviously
//!   correct; used as the oracle for the fast path.
//! * [`Aes`] — the table-driven implementation Sentry actually runs, with
//!   the compact rotating T-tables described in [`crate::tables`]. This is
//!   the code whose *state placement* matters: when its tables and round
//!   keys live in DRAM it is the paper's "generic AES", and when they are
//!   confined to the SoC (see [`crate::tracked`]) it is "AES On SoC".

use crate::key_schedule::KeySchedule;
use crate::{sbox, tables, KeyError, KeySize, BLOCK_SIZE};

/// A 128-bit AES block.
pub type Block = [u8; BLOCK_SIZE];

/// Fast, table-driven AES context.
#[derive(Debug, Clone)]
pub struct Aes {
    schedule: KeySchedule,
}

impl Aes {
    /// Expand `key` and build an encryption/decryption context.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::InvalidLength`] for keys that are not 16, 24,
    /// or 32 bytes.
    pub fn new(key: &[u8]) -> Result<Self, KeyError> {
        Ok(Aes {
            schedule: KeySchedule::expand(key)?,
        })
    }

    /// The key size of this context.
    #[must_use]
    pub fn key_size(&self) -> KeySize {
        self.schedule.size()
    }

    /// Borrow the expanded key schedule.
    #[must_use]
    pub fn schedule(&self) -> &KeySchedule {
        &self.schedule
    }

    /// Encrypt a single 16-byte block in place.
    ///
    /// The round state lives in four named locals rather than a `[u32; 4]`:
    /// a contiguous array tempts the SLP vectorizer into packing the four
    /// independent column chains through XMM insert/extract transfers,
    /// which sit right on the table-load critical path and cost ~35% on
    /// AVX2+ targets.
    pub fn encrypt_block(&self, block: &mut Block) {
        let te = tables::te();
        let sb = sbox::sbox();
        let rk = self.schedule.enc_words();
        let rounds = self.schedule.size().rounds();

        let [mut s0, mut s1, mut s2, mut s3] = load_columns(block);
        s0 ^= rk[0];
        s1 ^= rk[1];
        s2 ^= rk[2];
        s3 ^= rk[3];

        let mix = |a: u32, b: u32, c: u32, d: u32, k: u32| {
            te[(a >> 24) as usize]
                ^ te[((b >> 16) & 0xff) as usize].rotate_right(8)
                ^ te[((c >> 8) & 0xff) as usize].rotate_right(16)
                ^ te[(d & 0xff) as usize].rotate_right(24)
                ^ k
        };
        for round in 1..rounds {
            let k = &rk[4 * round..4 * round + 4];
            let t0 = mix(s0, s1, s2, s3, k[0]);
            let t1 = mix(s1, s2, s3, s0, k[1]);
            let t2 = mix(s2, s3, s0, s1, k[2]);
            let t3 = mix(s3, s0, s1, s2, k[3]);
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        let last = |a: u32, b: u32, c: u32, d: u32, k: u32| {
            ((u32::from(sb[(a >> 24) as usize]) << 24)
                | (u32::from(sb[((b >> 16) & 0xff) as usize]) << 16)
                | (u32::from(sb[((c >> 8) & 0xff) as usize]) << 8)
                | u32::from(sb[(d & 0xff) as usize]))
                ^ k
        };
        let k = &rk[4 * rounds..4 * rounds + 4];
        let t0 = last(s0, s1, s2, s3, k[0]);
        let t1 = last(s1, s2, s3, s0, k[1]);
        let t2 = last(s2, s3, s0, s1, k[2]);
        let t3 = last(s3, s0, s1, s2, k[3]);
        store_columns(&[t0, t1, t2, t3], block);
    }

    /// Decrypt a single 16-byte block in place (same named-locals shape as
    /// [`Aes::encrypt_block`], for the same SLP reason).
    pub fn decrypt_block(&self, block: &mut Block) {
        let td = tables::td();
        let isb = sbox::inv_sbox();
        let rk = self.schedule.dec_words();
        let rounds = self.schedule.size().rounds();

        let [mut s0, mut s1, mut s2, mut s3] = load_columns(block);
        s0 ^= rk[0];
        s1 ^= rk[1];
        s2 ^= rk[2];
        s3 ^= rk[3];

        let mix = |a: u32, b: u32, c: u32, d: u32, k: u32| {
            td[(a >> 24) as usize]
                ^ td[((b >> 16) & 0xff) as usize].rotate_right(8)
                ^ td[((c >> 8) & 0xff) as usize].rotate_right(16)
                ^ td[(d & 0xff) as usize].rotate_right(24)
                ^ k
        };
        for round in 1..rounds {
            let k = &rk[4 * round..4 * round + 4];
            let t0 = mix(s0, s3, s2, s1, k[0]);
            let t1 = mix(s1, s0, s3, s2, k[1]);
            let t2 = mix(s2, s1, s0, s3, k[2]);
            let t3 = mix(s3, s2, s1, s0, k[3]);
            (s0, s1, s2, s3) = (t0, t1, t2, t3);
        }
        let last = |a: u32, b: u32, c: u32, d: u32, k: u32| {
            ((u32::from(isb[(a >> 24) as usize]) << 24)
                | (u32::from(isb[((b >> 16) & 0xff) as usize]) << 16)
                | (u32::from(isb[((c >> 8) & 0xff) as usize]) << 8)
                | u32::from(isb[(d & 0xff) as usize]))
                ^ k
        };
        let k = &rk[4 * rounds..4 * rounds + 4];
        let t0 = last(s0, s3, s2, s1, k[0]);
        let t1 = last(s1, s0, s3, s2, k[1]);
        let t2 = last(s2, s1, s0, s3, k[2]);
        let t3 = last(s3, s2, s1, s0, k[3]);
        store_columns(&[t0, t1, t2, t3], block);
    }
}

fn load_columns(block: &Block) -> [u32; 4] {
    let mut s = [0u32; 4];
    for (c, chunk) in block.chunks_exact(4).enumerate() {
        s[c] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    s
}

fn store_columns(s: &[u32; 4], block: &mut Block) {
    for (c, word) in s.iter().enumerate() {
        block[4 * c..4 * c + 4].copy_from_slice(&word.to_be_bytes());
    }
}

/// Reference AES: a direct transcription of the FIPS-197 round steps.
///
/// About two orders of magnitude slower than [`Aes`]. Exists as a
/// correctness oracle, and models the "sequential, no lookup tables"
/// implementation style the paper contrasts against (AESSE's first
/// version, 100x slowdown).
#[derive(Debug, Clone)]
pub struct AesRef {
    schedule: KeySchedule,
}

impl AesRef {
    /// Expand `key` and build a reference context.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::InvalidLength`] for invalid key lengths.
    pub fn new(key: &[u8]) -> Result<Self, KeyError> {
        Ok(AesRef {
            schedule: KeySchedule::expand(key)?,
        })
    }

    /// Encrypt a block in place using the spec's round steps.
    pub fn encrypt_block(&self, block: &mut Block) {
        let rounds = self.schedule.size().rounds();
        let rk = self.schedule.enc_words();
        add_round_key(block, &rk[0..4]);
        for round in 1..rounds {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &rk[4 * round..4 * round + 4]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &rk[4 * rounds..4 * rounds + 4]);
    }

    /// Decrypt a block in place using the spec's inverse round steps.
    pub fn decrypt_block(&self, block: &mut Block) {
        let rounds = self.schedule.size().rounds();
        let rk = self.schedule.enc_words();
        add_round_key(block, &rk[4 * rounds..4 * rounds + 4]);
        for round in (1..rounds).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block);
            add_round_key(block, &rk[4 * round..4 * round + 4]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block);
        add_round_key(block, &rk[0..4]);
    }
}

// The state is kept in FIPS input order: byte index 4*c + r holds row r of
// column c.

fn add_round_key(block: &mut Block, rk: &[u32]) {
    for (c, word) in rk.iter().enumerate() {
        let bytes = word.to_be_bytes();
        for r in 0..4 {
            block[4 * c + r] ^= bytes[r];
        }
    }
}

fn sub_bytes(block: &mut Block) {
    for b in block.iter_mut() {
        *b = sbox::sub_byte(*b);
    }
}

fn inv_sub_bytes(block: &mut Block) {
    for b in block.iter_mut() {
        *b = sbox::inv_sub_byte(*b);
    }
}

fn shift_rows(block: &mut Block) {
    let orig = *block;
    for r in 1..4 {
        for c in 0..4 {
            block[4 * c + r] = orig[4 * ((c + r) % 4) + r];
        }
    }
}

fn inv_shift_rows(block: &mut Block) {
    let orig = *block;
    for r in 1..4 {
        for c in 0..4 {
            block[4 * ((c + r) % 4) + r] = orig[4 * c + r];
        }
    }
}

fn mix_columns(block: &mut Block) {
    use crate::gf::{mul3, xtime};
    for c in 0..4 {
        let col = [
            block[4 * c],
            block[4 * c + 1],
            block[4 * c + 2],
            block[4 * c + 3],
        ];
        block[4 * c] = xtime(col[0]) ^ mul3(col[1]) ^ col[2] ^ col[3];
        block[4 * c + 1] = col[0] ^ xtime(col[1]) ^ mul3(col[2]) ^ col[3];
        block[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ mul3(col[3]);
        block[4 * c + 3] = mul3(col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

fn inv_mix_columns(block: &mut Block) {
    use crate::gf::mul;
    for c in 0..4 {
        let col = [
            block[4 * c],
            block[4 * c + 1],
            block[4 * c + 2],
            block[4 * c + 3],
        ];
        block[4 * c] = mul(col[0], 14) ^ mul(col[1], 11) ^ mul(col[2], 13) ^ mul(col[3], 9);
        block[4 * c + 1] = mul(col[0], 9) ^ mul(col[1], 14) ^ mul(col[2], 11) ^ mul(col[3], 13);
        block[4 * c + 2] = mul(col[0], 13) ^ mul(col[1], 9) ^ mul(col[2], 14) ^ mul(col[3], 11);
        block[4 * c + 3] = mul(col[0], 11) ^ mul(col[1], 13) ^ mul(col[2], 9) ^ mul(col[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> Block {
        let mut out = [0u8; 16];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// FIPS-197 Appendix C known-answer vectors: same plaintext and the
    /// incrementing key for all three key sizes.
    const PT: &str = "00112233445566778899aabbccddeeff";
    const VECTORS: &[(&str, &str)] = &[
        (
            "000102030405060708090a0b0c0d0e0f",
            "69c4e0d86a7b0430d8cdb78070b4c55a",
        ),
        (
            "000102030405060708090a0b0c0d0e0f1011121314151617",
            "dda97ca4864cdfe06eaf70a0ec0d7191",
        ),
        (
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
            "8ea2b7ca516745bfeafc49904b496089",
        ),
    ];

    #[test]
    fn fast_aes_matches_fips_appendix_c() {
        for (key, ct) in VECTORS {
            let aes = Aes::new(&hex(key)).unwrap();
            let mut block = hex16(PT);
            aes.encrypt_block(&mut block);
            assert_eq!(block, hex16(ct), "encrypt failed for key {key}");
            aes.decrypt_block(&mut block);
            assert_eq!(block, hex16(PT), "decrypt failed for key {key}");
        }
    }

    #[test]
    fn reference_aes_matches_fips_appendix_c() {
        for (key, ct) in VECTORS {
            let aes = AesRef::new(&hex(key)).unwrap();
            let mut block = hex16(PT);
            aes.encrypt_block(&mut block);
            assert_eq!(block, hex16(ct), "ref encrypt failed for key {key}");
            aes.decrypt_block(&mut block);
            assert_eq!(block, hex16(PT), "ref decrypt failed for key {key}");
        }
    }

    #[test]
    fn fips_appendix_b_worked_example() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let aes = Aes::new(&key).unwrap();
        let mut block = hex16("3243f6a8885a308d313198a2e0370734");
        aes.encrypt_block(&mut block);
        assert_eq!(block, hex16("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fast_and_reference_agree_on_random_inputs() {
        // Deterministic pseudo-random coverage across key sizes.
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for ks in crate::KeySize::all() {
            let mut key = vec![0u8; ks.key_len()];
            for _ in 0..25 {
                for b in &mut key {
                    *b = next() as u8;
                }
                let fast = Aes::new(&key).unwrap();
                let reference = AesRef::new(&key).unwrap();
                let mut pt = [0u8; 16];
                for b in &mut pt {
                    *b = next() as u8;
                }
                let mut a = pt;
                let mut b = pt;
                fast.encrypt_block(&mut a);
                reference.encrypt_block(&mut b);
                assert_eq!(a, b, "{ks} encrypt divergence");
                fast.decrypt_block(&mut a);
                assert_eq!(a, pt, "{ks} roundtrip failure");
                reference.decrypt_block(&mut b);
                assert_eq!(b, pt);
            }
        }
    }

    #[test]
    fn shift_rows_inverse() {
        let mut block: Block = core::array::from_fn(|i| i as u8);
        let orig = block;
        shift_rows(&mut block);
        assert_ne!(block, orig);
        inv_shift_rows(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn mix_columns_inverse() {
        let mut block: Block = core::array::from_fn(|i| (31 * i + 7) as u8);
        let orig = block;
        mix_columns(&mut block);
        inv_mix_columns(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn mix_columns_spec_example() {
        // FIPS-197 / common test column: db 13 53 45 -> 8e 4d a1 bc.
        let mut block = [0u8; 16];
        block[0..4].copy_from_slice(&[0xdb, 0x13, 0x53, 0x45]);
        mix_columns(&mut block);
        assert_eq!(&block[0..4], &[0x8e, 0x4d, 0xa1, 0xbc]);
    }
}
