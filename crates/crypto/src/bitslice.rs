//! Bitsliced, table-free AES processing 16 blocks per invocation.
//!
//! The scalar [`crate::block::Aes`] walks T-tables with *data-dependent*
//! indices, which is why the paper must place 2 600 bytes of tables in
//! access-protected memory (Table 4). This module takes the opposite
//! approach, following Käsper & Schwabe (CHES 2009): the state of many
//! blocks is transposed into *bit planes* — word `i` holds bit `7-i` of
//! every state byte — and SubBytes becomes a fixed boolean circuit
//! (Boyar–Peralta, 113 gates) evaluated on whole words. There are **no
//! lookup tables at all**, so
//!
//! * every memory access touches a *data-independent* address, removing
//!   the cache/bus side channel the paper defends with access-protected
//!   placement, and
//! * throughput rises because each gate of the circuit operates on all
//!   packed blocks at once.
//!
//! The classic formulation packs 8 blocks into 128-bit registers; we widen
//! the same layout to 16 blocks (256 bit-lanes held as `[u64; 4]`) so the
//! straight-line gate code fills a 256-bit SIMD datapath when the target
//! supports one, and still vectorizes to pairs of 128-bit ops otherwise.
//!
//! Only whole-block *batches* benefit: CBC encryption is serially chained
//! and keeps using the scalar path. CBC **decryption** and CTR keystream
//! generation are data-parallel and are driven through
//! [`crate::batch::BlockCipherBatch`].
//!
//! Lane layout: lane `l = 64*c + 16*r + b` of bit-plane word `i` holds bit
//! `7-i` of state byte `(row r, column c)` of block `b`. Element `c` of
//! the `[u64; 4]` is therefore one AES state *column* across all 16
//! blocks, which makes ShiftRows an element permutation plus masks and
//! MixColumns a set of 16-bit rotations within each element.

use crate::block::Block;
use crate::key_schedule::KeySchedule;
use crate::modes::BlockCipher;
use crate::{KeyError, KeySize, BLOCK_SIZE};
use core::ops::{BitAnd, BitOr, BitXor, Not};

/// Number of blocks one bitsliced state packs (16 blocks = 256 lanes).
pub const PAR_BLOCKS: usize = 16;

/// One bit-plane word: 256 lanes as four 64-bit limbs.
///
/// Element `c` carries AES state column `c`; within an element, bits
/// `16*r..16*r+16` carry row `r` of the 16 packed blocks.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct Bw(pub(crate) [u64; 4]);

impl Bw {
    pub(crate) const ZERO: Bw = Bw([0; 4]);
    pub(crate) const ONES: Bw = Bw([u64::MAX; 4]);

    /// Rotate the row index of every lane by `j` (row `r` reads row
    /// `r + j mod 4` of the same column). A 16-bit rotation within each
    /// element, because one element is exactly four 16-bit row groups.
    #[inline(always)]
    fn rot_rows(self, j: u32) -> Bw {
        let n = 16 * j;
        Bw([
            self.0[0].rotate_right(n),
            self.0[1].rotate_right(n),
            self.0[2].rotate_right(n),
            self.0[3].rotate_right(n),
        ])
    }
}

impl BitXor for Bw {
    type Output = Bw;
    #[inline(always)]
    fn bitxor(self, o: Bw) -> Bw {
        Bw([
            self.0[0] ^ o.0[0],
            self.0[1] ^ o.0[1],
            self.0[2] ^ o.0[2],
            self.0[3] ^ o.0[3],
        ])
    }
}

impl BitAnd for Bw {
    type Output = Bw;
    #[inline(always)]
    fn bitand(self, o: Bw) -> Bw {
        Bw([
            self.0[0] & o.0[0],
            self.0[1] & o.0[1],
            self.0[2] & o.0[2],
            self.0[3] & o.0[3],
        ])
    }
}

impl BitOr for Bw {
    type Output = Bw;
    #[inline(always)]
    fn bitor(self, o: Bw) -> Bw {
        Bw([
            self.0[0] | o.0[0],
            self.0[1] | o.0[1],
            self.0[2] | o.0[2],
            self.0[3] | o.0[3],
        ])
    }
}

impl Not for Bw {
    type Output = Bw;
    #[inline(always)]
    fn not(self) -> Bw {
        Bw([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

/// Element type the boolean-circuit round functions operate on: either a
/// whole [`Bw`] (256 lanes) or a single `u64` limb (64 lanes).
///
/// The hot path evaluates the circuit one limb at a time — the S-box keeps
/// ~40 values live and four-limb values quadruple the spill traffic, while
/// the compiler happily re-vectorizes the short independent limb loop.
trait Lanes:
    Copy + BitXor<Output = Self> + BitAnd<Output = Self> + BitOr<Output = Self> + Not<Output = Self>
{
    /// All-ones constant (for the NOT gates of the affine layers).
    const ONES: Self;
    /// Rotate the row index of every lane by `j`.
    fn rot_rows(self, j: u32) -> Self;
}

impl Lanes for Bw {
    const ONES: Bw = Bw::ONES;
    #[inline(always)]
    fn rot_rows(self, j: u32) -> Bw {
        Bw::rot_rows(self, j)
    }
}

impl Lanes for u64 {
    const ONES: u64 = u64::MAX;
    #[inline(always)]
    fn rot_rows(self, j: u32) -> u64 {
        self.rotate_right(16 * j)
    }
}

// ---------------------------------------------------------------------------
// Packing: 16 blocks <-> 8 bit-plane words.
// ---------------------------------------------------------------------------

/// Swap the bits of `q[lo]` selected by `m << n` with the bits of `q[hi]`
/// selected by `m` (the classic SWAPMOVE primitive).
#[inline(always)]
fn swapmove(q: &mut [u64; 8], lo: usize, hi: usize, m: u64, n: u32) {
    let t = ((q[lo] >> n) ^ q[hi]) & m;
    q[hi] ^= t;
    q[lo] ^= t << n;
}

/// In-place 8×8 bit transpose across eight words: afterwards word `t` bit
/// `8j + k` equals the original word `k` bit `8j + t`. Involutive, so the
/// same network packs and unpacks.
#[inline(always)]
fn transpose8(q: &mut [u64; 8]) {
    const M1: u64 = 0x5555_5555_5555_5555;
    const M2: u64 = 0x3333_3333_3333_3333;
    const M4: u64 = 0x0f0f_0f0f_0f0f_0f0f;
    swapmove(q, 0, 1, M1, 1);
    swapmove(q, 2, 3, M1, 1);
    swapmove(q, 4, 5, M1, 1);
    swapmove(q, 6, 7, M1, 1);
    swapmove(q, 0, 2, M2, 2);
    swapmove(q, 1, 3, M2, 2);
    swapmove(q, 4, 6, M2, 2);
    swapmove(q, 5, 7, M2, 2);
    swapmove(q, 0, 4, M4, 4);
    swapmove(q, 1, 5, M4, 4);
    swapmove(q, 2, 6, M4, 4);
    swapmove(q, 3, 7, M4, 4);
}

/// Spread the four bytes of `v` to the even byte positions of a `u64`
/// (byte `r` of `v` lands at byte `2r`).
#[inline(always)]
fn spread(v: u32) -> u64 {
    let x = u64::from(v);
    let x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    (x | (x << 8)) & 0x00FF_00FF_00FF_00FF
}

/// Inverse of [`spread`]: gather the even byte positions back into a `u32`.
#[inline(always)]
fn unspread(x: u64) -> u32 {
    let x = x & 0x00FF_00FF_00FF_00FF;
    let x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    ((x | (x >> 16)) & 0xFFFF_FFFF) as u32
}

/// Transpose 16 blocks into 8 bit-plane words (`s[i]` = bit `7-i`).
///
/// Per column `c`, the transpose network wants source byte `L(m)` (lane
/// `m = 16r + b`) at word `m & 7`, byte-index `m >> 3` — i.e. word `k`
/// alternates bytes of block `k` and block `k + 8` walking down the rows,
/// which is exactly a byte-interleave of the two blocks' column words.
pub(crate) fn pack16(blocks: &[Block; PAR_BLOCKS]) -> [Bw; 8] {
    let mut s = [Bw::ZERO; 8];
    for c in 0..4 {
        let mut col = [0u32; PAR_BLOCKS];
        for (b, v) in col.iter_mut().enumerate() {
            let bytes = &blocks[b][4 * c..4 * c + 4];
            *v = u32::from_le_bytes(bytes.try_into().expect("4-byte column"));
        }
        let mut q = [0u64; 8];
        for (k, w) in q.iter_mut().enumerate() {
            *w = spread(col[k]) | (spread(col[k + 8]) << 8);
        }
        transpose8(&mut q);
        for (t, w) in q.iter().enumerate() {
            s[7 - t].0[c] = *w;
        }
    }
    s
}

/// Inverse of [`pack16`].
pub(crate) fn unpack16(s: &[Bw; 8], blocks: &mut [Block; PAR_BLOCKS]) {
    for c in 0..4 {
        let mut q = [0u64; 8];
        for (t, w) in q.iter_mut().enumerate() {
            *w = s[7 - t].0[c];
        }
        transpose8(&mut q);
        for (k, w) in q.iter().enumerate() {
            let lo = unspread(*w);
            let hi = unspread(*w >> 8);
            blocks[k][4 * c..4 * c + 4].copy_from_slice(&lo.to_le_bytes());
            blocks[k + 8][4 * c..4 * c + 4].copy_from_slice(&hi.to_le_bytes());
        }
    }
}

// ---------------------------------------------------------------------------
// Round transformations.
// ---------------------------------------------------------------------------

const ROW0: u64 = 0xFFFF;
const ROW1: u64 = 0xFFFF << 16;
const ROW2: u64 = 0xFFFF << 32;
const ROW3: u64 = 0xFFFF << 48;

/// ShiftRows on one bit-plane word: column `c`, row `r` reads column
/// `(c + r) mod 4`, row `r`.
#[inline(always)]
fn shift_rows_word(w: Bw) -> Bw {
    let a = w.0;
    Bw([
        (a[0] & ROW0) | (a[1] & ROW1) | (a[2] & ROW2) | (a[3] & ROW3),
        (a[1] & ROW0) | (a[2] & ROW1) | (a[3] & ROW2) | (a[0] & ROW3),
        (a[2] & ROW0) | (a[3] & ROW1) | (a[0] & ROW2) | (a[1] & ROW3),
        (a[3] & ROW0) | (a[0] & ROW1) | (a[1] & ROW2) | (a[2] & ROW3),
    ])
}

/// InvShiftRows: column `c`, row `r` reads column `(c - r) mod 4`, row `r`.
#[inline(always)]
fn inv_shift_rows_word(w: Bw) -> Bw {
    let a = w.0;
    Bw([
        (a[0] & ROW0) | (a[3] & ROW1) | (a[2] & ROW2) | (a[1] & ROW3),
        (a[1] & ROW0) | (a[0] & ROW1) | (a[3] & ROW2) | (a[2] & ROW3),
        (a[2] & ROW0) | (a[1] & ROW1) | (a[0] & ROW2) | (a[3] & ROW3),
        (a[3] & ROW0) | (a[2] & ROW1) | (a[1] & ROW2) | (a[0] & ROW3),
    ])
}

#[inline(always)]
fn shift_rows(s: &mut [Bw; 8]) {
    for w in s.iter_mut() {
        *w = shift_rows_word(*w);
    }
}

#[inline(always)]
fn inv_shift_rows(s: &mut [Bw; 8]) {
    for w in s.iter_mut() {
        *w = inv_shift_rows_word(*w);
    }
}

/// Multiply every lane byte by `x` in GF(2^8) (`xtime`): a bit-plane
/// renaming plus three reduction XORs (0x1b = bits 0, 1, 3, 4). Index `i`
/// is MSB-first (plane `i` = bit `7-i`).
#[inline(always)]
fn xtime<L: Lanes>(a: &[L; 8]) -> [L; 8] {
    [
        a[1],
        a[2],
        a[3],
        a[4] ^ a[0],
        a[5] ^ a[0],
        a[6],
        a[7] ^ a[0],
        a[0],
    ]
}

/// MixColumns on the full bitsliced state.
///
/// With `t_r = a_r ^ a_{r+1}` the column transform is
/// `b_r = xtime(t_r) ^ a_r ^ t_r ^ t_{r+2}` — two row rotations and one
/// `xtime` per plane.
#[inline(always)]
fn mix_columns<L: Lanes>(s: &mut [L; 8]) {
    let mut t = *s;
    for i in 0..8 {
        t[i] = s[i] ^ s[i].rot_rows(1);
    }
    let xt = xtime(&t);
    for i in 0..8 {
        s[i] = xt[i] ^ s[i] ^ t[i] ^ t[i].rot_rows(2);
    }
}

/// InvMixColumns via the decomposition
/// `InvMC(a) = MC(a ^ 04·(a ^ a_{r+2}))` (coefficients 9/11/13/14 factor
/// through the forward matrix), avoiding a second full GF multiply tree.
#[inline(always)]
fn inv_mix_columns<L: Lanes>(s: &mut [L; 8]) {
    let mut u = *s;
    for i in 0..8 {
        u[i] = s[i] ^ s[i].rot_rows(2);
    }
    let x4 = xtime(&xtime(&u));
    for i in 0..8 {
        s[i] = s[i] ^ x4[i];
    }
    mix_columns(s);
}

#[inline(always)]
fn add_round_key(s: &mut [Bw; 8], rk: &[Bw; 8]) {
    for i in 0..8 {
        s[i] = s[i] ^ rk[i];
    }
}

// ---------------------------------------------------------------------------
// SubBytes as a boolean circuit.
// ---------------------------------------------------------------------------

/// Shared nonlinear middle section of the Boyar–Peralta S-box circuit
/// (the GF(2^8) inversion in their tower basis). Inputs are the 22 linear
/// signals `[u7, y1..y21]`; outputs are the 18 shared products `z0..z17`.
/// Both the forward and the inverse S-box reuse this section with
/// different linear layers around it.
#[inline(always)]
#[allow(clippy::many_single_char_names)]
fn sbox_middle<L: Lanes>(sig: &[L; 22]) -> [L; 18] {
    let [u7, y1, y2, y3, y4, y5, y6, y7, y8, y9, y10, y11, y12, y13, y14, y15, y16, y17, y18, y19, y20, y21] =
        *sig;
    let t2 = y12 & y15;
    let t3 = y3 & y6;
    let t4 = t3 ^ t2;
    let t5 = y4 & u7;
    let t6 = t5 ^ t2;
    let t7 = y13 & y16;
    let t8 = y5 & y1;
    let t9 = t8 ^ t7;
    let t10 = y2 & y7;
    let t11 = t10 ^ t7;
    let t12 = y9 & y11;
    let t13 = y14 & y17;
    let t14 = t13 ^ t12;
    let t15 = y8 & y10;
    let t16 = t15 ^ t12;
    let t17 = t4 ^ t14;
    let t18 = t6 ^ t16;
    let t19 = t9 ^ t14;
    let t20 = t11 ^ t16;
    let t21 = t17 ^ y20;
    let t22 = t18 ^ y19;
    let t23 = t19 ^ y21;
    let t24 = t20 ^ y18;
    let t25 = t21 ^ t22;
    let t26 = t21 & t23;
    let t27 = t24 ^ t26;
    let t28 = t25 & t27;
    let t29 = t28 ^ t22;
    let t30 = t23 ^ t24;
    let t31 = t22 ^ t26;
    let t32 = t31 & t30;
    let t33 = t32 ^ t24;
    let t34 = t23 ^ t33;
    let t35 = t27 ^ t33;
    let t36 = t24 & t35;
    let t37 = t36 ^ t34;
    let t38 = t27 ^ t36;
    let t39 = t29 & t38;
    let t40 = t25 ^ t39;
    let t41 = t40 ^ t37;
    let t42 = t29 ^ t33;
    let t43 = t29 ^ t40;
    let t44 = t33 ^ t37;
    let t45 = t42 ^ t41;
    [
        t44 & y15,
        t37 & y6,
        t33 & u7,
        t43 & y16,
        t40 & y1,
        t29 & y7,
        t42 & y11,
        t45 & y17,
        t41 & y10,
        t44 & y12,
        t37 & y3,
        t33 & y4,
        t43 & y13,
        t40 & y5,
        t29 & y2,
        t42 & y9,
        t45 & y14,
        t41 & y8,
    ]
}

/// Forward SubBytes: Boyar–Peralta top/bottom linear layers around
/// [`sbox_middle`]. `s[i]` is bit-plane `7-i` (so `s[0]` is `U0`, the MSB,
/// in the circuit's convention).
#[inline(always)]
fn sub_bytes<L: Lanes>(s: &mut [L; 8]) {
    let [u0, u1, u2, u3, u4, u5, u6, u7] = *s;
    let y14 = u3 ^ u5;
    let y13 = u0 ^ u6;
    let y9 = u0 ^ u3;
    let y8 = u0 ^ u5;
    let t0 = u1 ^ u2;
    let y1 = t0 ^ u7;
    let y4 = y1 ^ u3;
    let y12 = y13 ^ y14;
    let y2 = y1 ^ u0;
    let y5 = y1 ^ u6;
    let y3 = y5 ^ y8;
    let t1 = u4 ^ y12;
    let y15 = t1 ^ u5;
    let y20 = t1 ^ u1;
    let y6 = y15 ^ u7;
    let y10 = y15 ^ t0;
    let y11 = y20 ^ y9;
    let y7 = u7 ^ y11;
    let y17 = y10 ^ y11;
    let y19 = y10 ^ y8;
    let y16 = t0 ^ y11;
    let y21 = y13 ^ y16;
    let y18 = u0 ^ y16;
    let z = sbox_middle(&[
        u7, y1, y2, y3, y4, y5, y6, y7, y8, y9, y10, y11, y12, y13, y14, y15, y16, y17, y18, y19,
        y20, y21,
    ]);
    let [z0, z1, z2, z3, z4, z5, z6, z7, z8, z9, z10, z11, z12, z13, z14, z15, z16, z17] = z;
    let t46 = z15 ^ z16;
    let t47 = z10 ^ z11;
    let t48 = z5 ^ z13;
    let t49 = z9 ^ z10;
    let t50 = z2 ^ z12;
    let t51 = z2 ^ z5;
    let t52 = z7 ^ z8;
    let t53 = z0 ^ z3;
    let t54 = z6 ^ z7;
    let t55 = z16 ^ z17;
    let t56 = z12 ^ t48;
    let t57 = t50 ^ t53;
    let t58 = z4 ^ t46;
    let t59 = z3 ^ t54;
    let t60 = t46 ^ t57;
    let t61 = z14 ^ t57;
    let t62 = t52 ^ t58;
    let t63 = t49 ^ t58;
    let t64 = z4 ^ t59;
    let t65 = t61 ^ t62;
    let t66 = z1 ^ t63;
    let s0 = t59 ^ t63;
    let s6 = !(t56 ^ t62);
    let s7 = !(t48 ^ t60);
    let t67 = t64 ^ t65;
    let s3 = t53 ^ t66;
    let s4 = t51 ^ t66;
    let s5 = t47 ^ t65;
    let s1 = !(t64 ^ s3);
    let s2 = !(t55 ^ t67);
    *s = [s0, s1, s2, s3, s4, s5, s6, s7];
}

/// Inverse SubBytes: the same [`sbox_middle`] wrapped in linear layers
/// composed with the inverse affine transform. These layers were derived
/// mechanically over GF(2) from the forward circuit (compose the top layer
/// with `InvAffine` and the bottom layer with `A^-1`) and verified
/// exhaustively against the inverse S-box table; see the module tests.
#[inline(always)]
fn inv_sub_bytes<L: Lanes>(s: &mut [L; 8]) {
    let [x0, x1, x2, x3, x4, x5, x6, x7] = *s;
    let ones = L::ONES;
    let u7 = x0 ^ x2 ^ x5 ^ ones;
    let y1 = x3 ^ x4 ^ x7 ^ ones;
    let y2 = x1 ^ x4 ^ x6 ^ x7 ^ ones;
    let y3 = x0 ^ x3;
    let y4 = x1 ^ x3 ^ x6 ^ x7 ^ ones;
    let y5 = x1 ^ x3 ^ ones;
    let y6 = x0 ^ x1 ^ x3 ^ ones;
    let y7 = x1 ^ x2 ^ x3 ^ x6 ^ x7;
    let y8 = x0 ^ x1 ^ ones;
    let y9 = x3 ^ x4;
    let y10 = x0 ^ x1 ^ x4 ^ x7;
    let y11 = x0 ^ x1 ^ x3 ^ x5 ^ x6 ^ x7 ^ ones;
    let y12 = x0 ^ x1 ^ x6 ^ x7 ^ ones;
    let y13 = x3 ^ x4 ^ x6 ^ x7;
    let y14 = x0 ^ x1 ^ x3 ^ x4 ^ ones;
    let y15 = x1 ^ x2 ^ x3 ^ x5;
    let y16 = x1 ^ x2 ^ x4 ^ x6 ^ ones;
    let y17 = x3 ^ x4 ^ x5 ^ x6 ^ ones;
    let y18 = x2 ^ x3 ^ x4 ^ ones;
    let y19 = x4 ^ x7 ^ ones;
    let y20 = x0 ^ x1 ^ x4 ^ x5 ^ x6 ^ x7 ^ ones;
    let y21 = x1 ^ x2 ^ x3 ^ x7 ^ ones;
    let z = sbox_middle(&[
        u7, y1, y2, y3, y4, y5, y6, y7, y8, y9, y10, y11, y12, y13, y14, y15, y16, y17, y18, y19,
        y20, y21,
    ]);
    let [z0, z1, z2, z3, z4, z5, z6, z7, z8, z9, z10, z11, z12, z13, z14, z15, z16, z17] = z;
    let w0 = z3 ^ z5 ^ z6 ^ z8 ^ z12 ^ z13 ^ z15 ^ z16;
    let w1 = z1 ^ z2 ^ z3 ^ z4 ^ z6 ^ z8 ^ z9 ^ z10 ^ z13 ^ z14 ^ z15 ^ z17;
    let w2 = z1 ^ z2 ^ z3 ^ z4 ^ z6 ^ z8 ^ z10 ^ z11 ^ z12 ^ z14 ^ z15 ^ z16;
    let w3 = z0 ^ z2 ^ z6 ^ z8 ^ z12 ^ z13 ^ z15 ^ z16;
    let w4 = z0 ^ z2 ^ z4 ^ z5 ^ z6 ^ z7 ^ z10 ^ z11 ^ z12 ^ z13 ^ z15 ^ z17;
    let w5 = z0 ^ z1 ^ z4 ^ z5 ^ z6 ^ z8 ^ z12 ^ z13 ^ z15 ^ z16;
    let w6 = z3 ^ z4 ^ z6 ^ z7 ^ z12 ^ z13 ^ z15 ^ z16;
    let w7 = z9 ^ z11 ^ z15 ^ z17;
    *s = [w0, w1, w2, w3, w4, w5, w6, w7];
}

// ---------------------------------------------------------------------------
// Full cipher over one packed state.
// ---------------------------------------------------------------------------

/// Encrypt 16 packed blocks, fetching the bitsliced round key `r` through
/// `rk`. The closure indirection lets [`crate::tracked`] route every key
/// fetch through a [`crate::tracked::StateStore`] while sharing this exact
/// round flow.
pub(crate) fn encrypt16_with(
    rounds: usize,
    mut rk: impl FnMut(usize) -> [Bw; 8],
    blocks: &mut [Block; PAR_BLOCKS],
) {
    let mut s = pack16(blocks);
    add_round_key(&mut s, &rk(0));
    for round in 1..rounds {
        enc_round(&mut s, &rk(round));
    }
    enc_last_round(&mut s, &rk(rounds));
    unpack16(&s, blocks);
}

/// Decrypt 16 packed blocks using the *equivalent inverse cipher*: the
/// keys fetched through `rk` must come from
/// [`KeySchedule::dec_words`]-style schedules (rounds reversed,
/// InvMixColumns folded into the middle round keys).
pub(crate) fn decrypt16_with(
    rounds: usize,
    mut rk: impl FnMut(usize) -> [Bw; 8],
    blocks: &mut [Block; PAR_BLOCKS],
) {
    let mut s = pack16(blocks);
    add_round_key(&mut s, &rk(0));
    for round in 1..rounds {
        dec_round(&mut s, &rk(round));
    }
    dec_last_round(&mut s, &rk(rounds));
    unpack16(&s, blocks);
}

/// Fast path of [`encrypt16_with`] over a pre-bitsliced schedule slice
/// (`rks[r]` = round `r`), reading round keys in place instead of copying
/// them out of a closure.
#[inline]
pub(crate) fn encrypt16(rks: &[[Bw; 8]], blocks: &mut [Block; PAR_BLOCKS]) {
    let rounds = rks.len() - 1;
    let mut s = pack16(blocks);
    add_round_key(&mut s, &rks[0]);
    for rk in &rks[1..rounds] {
        enc_round(&mut s, rk);
    }
    enc_last_round(&mut s, &rks[rounds]);
    unpack16(&s, blocks);
}

/// Fast path of [`decrypt16_with`] over a pre-bitsliced *equivalent
/// inverse* schedule slice.
#[inline]
pub(crate) fn decrypt16(rks: &[[Bw; 8]], blocks: &mut [Block; PAR_BLOCKS]) {
    let rounds = rks.len() - 1;
    let mut s = pack16(blocks);
    add_round_key(&mut s, &rks[0]);
    for rk in &rks[1..rounds] {
        dec_round(&mut s, rk);
    }
    dec_last_round(&mut s, &rks[rounds]);
    unpack16(&s, blocks);
}

/// Copy limb `e` of every plane out into a flat `[u64; 8]`.
#[inline(always)]
fn limb(s: &[Bw; 8], e: usize) -> [u64; 8] {
    [
        s[0].0[e], s[1].0[e], s[2].0[e], s[3].0[e], s[4].0[e], s[5].0[e], s[6].0[e], s[7].0[e],
    ]
}

/// One middle encryption round. ShiftRows is a byte permutation, so it
/// commutes with the byte-local SubBytes; doing it first as its own pass
/// leaves SubBytes, MixColumns, and AddRoundKey all *limb-local* (row
/// rotations never cross `[u64; 4]` elements), letting the limb loop run
/// the whole remainder of the round with 8 live words instead of 8×4.
/// (Folding ShiftRows into the limb gather instead was measured ~2.5×
/// slower: the cross-element reads break the loop's vectorizable shape.)
#[inline(always)]
fn enc_round(s: &mut [Bw; 8], rk: &[Bw; 8]) {
    shift_rows(s);
    for e in 0..4 {
        let mut l = limb(s, e);
        sub_bytes(&mut l);
        mix_columns(&mut l);
        for i in 0..8 {
            s[i].0[e] = l[i] ^ rk[i].0[e];
        }
    }
}

/// The final encryption round (no MixColumns).
#[inline(always)]
fn enc_last_round(s: &mut [Bw; 8], rk: &[Bw; 8]) {
    shift_rows(s);
    for e in 0..4 {
        let mut l = limb(s, e);
        sub_bytes(&mut l);
        for i in 0..8 {
            s[i].0[e] = l[i] ^ rk[i].0[e];
        }
    }
}

/// One middle round of the equivalent inverse cipher (InvShiftRows
/// commutes with InvSubBytes just like the forward pair).
#[inline(always)]
fn dec_round(s: &mut [Bw; 8], rk: &[Bw; 8]) {
    inv_shift_rows(s);
    for e in 0..4 {
        let mut l = limb(s, e);
        inv_sub_bytes(&mut l);
        inv_mix_columns(&mut l);
        for i in 0..8 {
            s[i].0[e] = l[i] ^ rk[i].0[e];
        }
    }
}

/// The final decryption round (no InvMixColumns).
#[inline(always)]
fn dec_last_round(s: &mut [Bw; 8], rk: &[Bw; 8]) {
    inv_shift_rows(s);
    for e in 0..4 {
        let mut l = limb(s, e);
        inv_sub_bytes(&mut l);
        for i in 0..8 {
            s[i].0[e] = l[i] ^ rk[i].0[e];
        }
    }
}

/// `SubWord` (FIPS-197 §5.2) evaluated through the Boyar–Peralta circuit
/// instead of an S-box table: the four bytes ride in lanes 0..4 of a
/// `u64`-plane state. Used by the table-free tracked key expansion, where
/// even key-schedule byte substitution must not index memory with
/// key-dependent addresses.
pub(crate) fn sub_word_circuit(w: u32) -> u32 {
    let bytes = w.to_be_bytes();
    let mut s = [0u64; 8];
    for (b, &byte) in bytes.iter().enumerate() {
        for (i, plane) in s.iter_mut().enumerate() {
            if byte >> (7 - i) & 1 != 0 {
                *plane |= 1 << b;
            }
        }
    }
    sub_bytes(&mut s);
    let mut out = [0u8; 4];
    for (b, o) in out.iter_mut().enumerate() {
        for (i, plane) in s.iter().enumerate() {
            *o |= (((plane >> b) & 1) as u8) << (7 - i);
        }
    }
    u32::from_be_bytes(out)
}

/// Broadcast one scalar round key (four big-endian columns, as stored by
/// [`KeySchedule`]) into bit planes: every block lane of column `c`, row
/// `r` receives bit `7-i` of key byte `4c + r`.
pub(crate) fn bitslice_round_key(words: &[u32]) -> [Bw; 8] {
    let mut out = [Bw::ZERO; 8];
    for (c, word) in words.iter().enumerate().take(4) {
        let bytes = word.to_be_bytes();
        for (r, byte) in bytes.iter().enumerate() {
            for (i, plane) in out.iter_mut().enumerate() {
                if byte >> (7 - i) & 1 != 0 {
                    plane.0[c] |= ROW0 << (16 * r);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Public context.
// ---------------------------------------------------------------------------

/// A table-free bitsliced AES context with pre-bitsliced round keys.
///
/// Key expansion happens once at construction ([`BitslicedAes::new`]) or
/// is borrowed from an existing [`KeySchedule`]
/// ([`BitslicedAes::from_schedule`]) so per-operation paths never re-run
/// it — the "hoist key-schedule work to key-install time" rule.
#[derive(Clone)]
pub struct BitslicedAes {
    size: KeySize,
    enc: Vec<[Bw; 8]>,
    dec: Vec<[Bw; 8]>,
}

impl core::fmt::Debug for BitslicedAes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.debug_struct("BitslicedAes")
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

impl BitslicedAes {
    /// Expand `key` and pre-bitslice both round-key schedules.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::InvalidLength`] for keys that are not 16, 24,
    /// or 32 bytes.
    pub fn new(key: &[u8]) -> Result<Self, KeyError> {
        Ok(Self::from_schedule(&KeySchedule::expand(key)?))
    }

    /// Build from an already-expanded schedule without re-running key
    /// expansion (engines that already hold an [`crate::Aes`] share its
    /// schedule).
    #[must_use]
    pub fn from_schedule(schedule: &KeySchedule) -> Self {
        let rounds = schedule.size().rounds();
        let enc = (0..=rounds)
            .map(|r| bitslice_round_key(&schedule.enc_words()[4 * r..4 * r + 4]))
            .collect();
        let dec = (0..=rounds)
            .map(|r| bitslice_round_key(&schedule.dec_words()[4 * r..4 * r + 4]))
            .collect();
        BitslicedAes {
            size: schedule.size(),
            enc,
            dec,
        }
    }

    /// The key size of this context.
    #[must_use]
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    /// Encrypt every block in place (ECB over the batch; modes layer the
    /// chaining). Any number of blocks is accepted; full 16-block chunks
    /// run packed, the tail runs through a zero-padded final state.
    pub fn encrypt_blocks(&self, blocks: &mut [Block]) {
        let (full, tail) = blocks.as_chunks_mut::<PAR_BLOCKS>();
        for chunk in full {
            encrypt16(&self.enc, chunk);
        }
        if !tail.is_empty() {
            let mut pad = [[0u8; BLOCK_SIZE]; PAR_BLOCKS];
            pad[..tail.len()].copy_from_slice(tail);
            encrypt16(&self.enc, &mut pad);
            tail.copy_from_slice(&pad[..tail.len()]);
        }
    }

    /// Decrypt every block in place (see [`BitslicedAes::encrypt_blocks`]).
    pub fn decrypt_blocks(&self, blocks: &mut [Block]) {
        let (full, tail) = blocks.as_chunks_mut::<PAR_BLOCKS>();
        for chunk in full {
            decrypt16(&self.dec, chunk);
        }
        if !tail.is_empty() {
            let mut pad = [[0u8; BLOCK_SIZE]; PAR_BLOCKS];
            pad[..tail.len()].copy_from_slice(tail);
            decrypt16(&self.dec, &mut pad);
            tail.copy_from_slice(&pad[..tail.len()]);
        }
    }
}

impl BlockCipher for BitslicedAes {
    /// Single-block encryption pads a 15-block-idle batch; it exists so
    /// the context satisfies [`BlockCipher`], but serial modes should
    /// prefer the scalar path.
    fn encrypt_block(&self, block: &mut Block) {
        let mut one = [*block];
        self.encrypt_blocks(&mut one);
        *block = one[0];
    }

    fn decrypt_block(&self, block: &mut Block) {
        let mut one = [*block];
        self.decrypt_blocks(&mut one);
        *block = one[0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{Aes, AesRef};
    use crate::sbox;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex16(s: &str) -> Block {
        hex(s).try_into().unwrap()
    }

    /// Evaluate a lane-wise transform on a single byte by packing it into
    /// lane 0 of every plane.
    fn byte_through(f: impl Fn(&mut [Bw; 8]), x: u8) -> u8 {
        let mut s = [Bw::ZERO; 8];
        for (i, plane) in s.iter_mut().enumerate() {
            if x >> (7 - i) & 1 != 0 {
                *plane = Bw::ONES;
            }
        }
        f(&mut s);
        let mut out = 0u8;
        for (i, plane) in s.iter().enumerate() {
            out |= ((plane.0[0] & 1) as u8) << (7 - i);
        }
        out
    }

    #[test]
    fn sbox_circuit_matches_table_exhaustively() {
        for x in 0..=255u8 {
            assert_eq!(byte_through(sub_bytes, x), sbox::sub_byte(x), "S({x:#04x})");
            assert_eq!(
                byte_through(inv_sub_bytes, x),
                sbox::inv_sub_byte(x),
                "S^-1({x:#04x})"
            );
        }
    }

    #[test]
    fn sub_word_circuit_matches_table_sub_word() {
        let mut w = 0x0123_4567u32;
        for _ in 0..64 {
            assert_eq!(
                sub_word_circuit(w),
                crate::key_schedule::sub_word(w),
                "{w:#010x}"
            );
            w = w.wrapping_mul(0x9E37_79B9).rotate_left(7) ^ 0xA5A5_5A5A;
        }
        assert_eq!(sub_word_circuit(0), crate::key_schedule::sub_word(0));
        assert_eq!(
            sub_word_circuit(u32::MAX),
            crate::key_schedule::sub_word(u32::MAX)
        );
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut blocks = [[0u8; BLOCK_SIZE]; PAR_BLOCKS];
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for b in blocks.iter_mut().flatten() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 33) as u8;
        }
        let s = pack16(&blocks);
        let mut back = [[0u8; BLOCK_SIZE]; PAR_BLOCKS];
        unpack16(&s, &mut back);
        assert_eq!(blocks, back);
    }

    /// FIPS-197 Appendix C known-answer vectors, all three key sizes, with
    /// the plaintext replicated across every lane of the batch.
    #[test]
    fn matches_fips_appendix_c() {
        const PT: &str = "00112233445566778899aabbccddeeff";
        const VECTORS: &[(&str, &str)] = &[
            (
                "000102030405060708090a0b0c0d0e0f",
                "69c4e0d86a7b0430d8cdb78070b4c55a",
            ),
            (
                "000102030405060708090a0b0c0d0e0f1011121314151617",
                "dda97ca4864cdfe06eaf70a0ec0d7191",
            ),
            (
                "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
                "8ea2b7ca516745bfeafc49904b496089",
            ),
        ];
        for (key, ct) in VECTORS {
            let bs = BitslicedAes::new(&hex(key)).unwrap();
            let mut blocks = [hex16(PT); PAR_BLOCKS];
            bs.encrypt_blocks(&mut blocks);
            for b in &blocks {
                assert_eq!(*b, hex16(ct), "encrypt failed for key {key}");
            }
            bs.decrypt_blocks(&mut blocks);
            for b in &blocks {
                assert_eq!(*b, hex16(PT), "decrypt failed for key {key}");
            }
        }
    }

    #[test]
    fn agrees_with_reference_on_random_batches_and_tails() {
        let mut seed = 0xdead_beef_cafe_f00du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for ks in crate::KeySize::all() {
            let mut key = vec![0u8; ks.key_len()];
            for b in &mut key {
                *b = next() as u8;
            }
            let bs = BitslicedAes::new(&key).unwrap();
            let reference = AesRef::new(&key).unwrap();
            // Odd tails 1..=7, a full batch, and batch+tail shapes.
            for nblocks in [1usize, 2, 3, 4, 5, 6, 7, 15, 16, 17, 33, 40] {
                let mut blocks = vec![[0u8; BLOCK_SIZE]; nblocks];
                for b in blocks.iter_mut().flatten() {
                    *b = next() as u8;
                }
                let mut want = blocks.clone();
                for b in want.iter_mut() {
                    reference.encrypt_block(b);
                }
                let mut got = blocks.clone();
                bs.encrypt_blocks(&mut got);
                assert_eq!(got, want, "{ks} encrypt, {nblocks} blocks");
                bs.decrypt_blocks(&mut got);
                assert_eq!(got, blocks, "{ks} decrypt roundtrip, {nblocks} blocks");
            }
        }
    }

    #[test]
    fn from_schedule_matches_new_and_scalar() {
        let key = [0x42u8; 16];
        let aes = Aes::new(&key).unwrap();
        let bs = BitslicedAes::from_schedule(aes.schedule());
        let mut a = [[7u8; BLOCK_SIZE]; 3];
        let mut b = a;
        bs.encrypt_blocks(&mut a);
        for blk in b.iter_mut() {
            aes.encrypt_block(blk);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn single_block_cipher_impl_agrees() {
        let key = [9u8; 32];
        let bs = BitslicedAes::new(&key).unwrap();
        let aes = Aes::new(&key).unwrap();
        let mut a = *b"sixteen byte blk";
        let mut b = a;
        BlockCipher::encrypt_block(&bs, &mut a);
        aes.encrypt_block(&mut b);
        assert_eq!(a, b);
        BlockCipher::decrypt_block(&bs, &mut a);
        assert_eq!(&a, b"sixteen byte blk");
    }

    #[test]
    fn debug_never_prints_key_material() {
        let bs = BitslicedAes::new(&[0x5au8; 16]).unwrap();
        let dbg = format!("{bs:?}");
        assert!(!dbg.contains("enc"));
        assert!(!dbg.contains("dec"));
    }
}
