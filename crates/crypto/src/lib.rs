//! From-scratch implementation of the Advanced Encryption Standard
//! (FIPS-197) used by the Sentry reproduction.
//!
//! Sentry ("Protecting Data on Smartphones and Tablets from Memory
//! Attacks", ASPLOS 2015) cannot use a generic cryptographic library: a
//! generic library spills key schedules, stack temporaries, and lookup
//! tables into DRAM, where cold-boot, bus-monitoring, and DMA attacks can
//! observe them. This crate therefore provides AES in three forms:
//!
//! 1. [`block::Aes`] — a fast, table-driven implementation operating on
//!    native memory. This models the *generic* ("unsafe") AES of the paper:
//!    OpenSSL AES in user space or the Linux Crypto API's software AES.
//! 2. [`block::AesRef`] — a slow, straight-from-the-spec reference used to
//!    cross-check the table-driven code.
//! 3. [`tracked::TrackedAes`] — an implementation whose *entire* state
//!    (key, round keys, round tables, S-boxes, input block, loop counters)
//!    lives inside a caller-provided [`tracked::StateStore`]. Backing the
//!    store with simulated iRAM or a locked L2 cache way yields the paper's
//!    *AES On SoC*; backing it with simulated DRAM reproduces the leaky
//!    baseline that bus monitors exploit.
//!
//! The [`state`] module gives a byte-accurate breakdown of AES state by
//! sensitivity class (secret / public / access-protected), regenerating
//! Table 4 of the paper.
//!
//! # Example
//!
//! ```
//! use sentry_crypto::block::Aes;
//! use sentry_crypto::modes::{cbc_decrypt, cbc_encrypt};
//!
//! # fn main() -> Result<(), sentry_crypto::KeyError> {
//! let aes = Aes::new(&[0u8; 16])?;
//! let mut data = *b"sixteen byte blk";
//! let iv = [0u8; 16];
//! cbc_encrypt(&aes, &iv, &mut data);
//! cbc_decrypt(&aes, &iv, &mut data);
//! assert_eq!(&data, b"sixteen byte blk");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bitslice;
pub mod block;
pub mod error;
pub mod gf;
pub mod health;
pub mod key_schedule;
pub mod mac;
pub mod modes;
pub mod parallel;
pub mod pipeline;
pub mod sbox;
pub mod state;
pub mod tables;
pub mod tracked;

pub use batch::BlockCipherBatch;
pub use bitslice::BitslicedAes;
pub use block::{Aes, AesRef};
pub use error::{CryptoError, KeyError};
pub use health::{FailureKind, HealthConfig, HealthGovernor, HealthState, HealthStats, RetryStats};
pub use mac::Cmac;
pub use modes::PageCipherMode;
pub use pipeline::{FallbackReason, KeystreamCache, KeystreamStats, PipelineConfig};
pub use state::{AesStateLayout, Sensitivity, StateComponent};
pub use tracked::{AccessEvent, StateStore, TableId, TrackedAes, TrackedBitslicedAes, VecStore};

/// AES block size in bytes (fixed at 128 bits by FIPS-197).
pub const BLOCK_SIZE: usize = 16;

/// Supported AES key sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// Key length in bytes.
    #[must_use]
    pub fn key_len(self) -> usize {
        match self {
            KeySize::Aes128 => 16,
            KeySize::Aes192 => 24,
            KeySize::Aes256 => 32,
        }
    }

    /// Number of rounds (`Nr` in FIPS-197).
    #[must_use]
    pub fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    /// Number of 32-bit words in the key (`Nk` in FIPS-197).
    #[must_use]
    pub fn nk(self) -> usize {
        self.key_len() / 4
    }

    /// Determine the key size from a raw key length in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::InvalidLength`] if `len` is not 16, 24, or 32.
    pub fn from_key_len(len: usize) -> Result<Self, KeyError> {
        match len {
            16 => Ok(KeySize::Aes128),
            24 => Ok(KeySize::Aes192),
            32 => Ok(KeySize::Aes256),
            other => Err(KeyError::InvalidLength(other)),
        }
    }

    /// All supported key sizes, in increasing order.
    #[must_use]
    pub fn all() -> [KeySize; 3] {
        [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256]
    }
}

impl std::fmt::Display for KeySize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeySize::Aes128 => write!(f, "AES-128"),
            KeySize::Aes192 => write!(f, "AES-192"),
            KeySize::Aes256 => write!(f, "AES-256"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_size_roundtrip() {
        for ks in KeySize::all() {
            assert_eq!(KeySize::from_key_len(ks.key_len()).unwrap(), ks);
        }
    }

    #[test]
    fn key_size_rejects_bad_lengths() {
        for len in [0, 1, 15, 17, 23, 25, 31, 33, 64] {
            assert!(KeySize::from_key_len(len).is_err());
        }
    }

    #[test]
    fn rounds_and_nk() {
        assert_eq!(KeySize::Aes128.rounds(), 10);
        assert_eq!(KeySize::Aes192.rounds(), 12);
        assert_eq!(KeySize::Aes256.rounds(), 14);
        assert_eq!(KeySize::Aes128.nk(), 4);
        assert_eq!(KeySize::Aes192.nk(), 6);
        assert_eq!(KeySize::Aes256.nk(), 8);
    }

    #[test]
    fn display_names() {
        assert_eq!(KeySize::Aes128.to_string(), "AES-128");
        assert_eq!(KeySize::Aes192.to_string(), "AES-192");
        assert_eq!(KeySize::Aes256.to_string(), "AES-256");
    }
}
