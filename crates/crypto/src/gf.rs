//! Arithmetic in GF(2^8), the finite field underlying AES.
//!
//! AES works in GF(2^8) with the reduction polynomial
//! `x^8 + x^4 + x^3 + x + 1` (0x11B). The paper's Table 4 notes that AES
//! implementations precompute "the exponentiation of 2 in a particular
//! field, such as GF(2^8)" into lookup tables whose *access patterns* are
//! sensitive even though their contents are public. This module provides
//! the primitive operations those tables are built from.

/// The AES reduction polynomial, minus the x^8 term (which is implicit in
/// the carry-out of a byte shift).
pub const REDUCTION_POLY: u8 = 0x1B;

/// Multiply an element of GF(2^8) by `x` (i.e., by 2), reducing modulo the
/// AES polynomial.
///
/// ```
/// assert_eq!(sentry_crypto::gf::xtime(0x57), 0xAE);
/// assert_eq!(sentry_crypto::gf::xtime(0xAE), 0x47);
/// ```
#[must_use]
pub fn xtime(a: u8) -> u8 {
    let shifted = a << 1;
    if a & 0x80 != 0 {
        shifted ^ REDUCTION_POLY
    } else {
        shifted
    }
}

/// Multiply two elements of GF(2^8) using the shift-and-add ("Russian
/// peasant") method.
///
/// ```
/// // The FIPS-197 worked example: {57} x {83} = {c1}.
/// assert_eq!(sentry_crypto::gf::mul(0x57, 0x83), 0xC1);
/// ```
#[must_use]
pub fn mul(a: u8, b: u8) -> u8 {
    let mut acc = 0u8;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// Compute the multiplicative inverse of `a` in GF(2^8).
///
/// The inverse of zero is defined to be zero, as in the AES S-box
/// construction. Uses exponentiation: `a^254 = a^-1` for nonzero `a`,
/// since the multiplicative group has order 255.
#[must_use]
pub fn inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 by square-and-multiply. 254 = 0b1111_1110.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = mul(result, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    result
}

/// Multiply a GF(2^8) element by 3 (`{03}`), used by MixColumns.
#[must_use]
pub fn mul3(a: u8) -> u8 {
    xtime(a) ^ a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xtime_matches_spec_examples() {
        // FIPS-197 section 4.2.1 chain for {57}: x2 = AE, x4 = 47, x8 = 8E.
        assert_eq!(xtime(0x57), 0xAE);
        assert_eq!(xtime(0xAE), 0x47);
        assert_eq!(xtime(0x47), 0x8E);
        assert_eq!(xtime(0x8E), 0x07);
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn mul_is_commutative() {
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(5) {
                assert_eq!(mul(a, b), mul(b, a));
            }
        }
    }

    #[test]
    fn mul_distributes_over_xor() {
        for a in (0..=255u8).step_by(11) {
            for b in (0..=255u8).step_by(13) {
                for c in (0..=255u8).step_by(17) {
                    assert_eq!(mul(a, b ^ c), mul(a, b) ^ mul(a, c));
                }
            }
        }
    }

    #[test]
    fn inv_is_involutive_inverse() {
        assert_eq!(inv(0), 0);
        for a in 1..=255u8 {
            let ai = inv(a);
            assert_eq!(mul(a, ai), 1, "a = {a:#x}, inv = {ai:#x}");
            assert_eq!(inv(ai), a);
        }
    }

    #[test]
    fn mul3_matches_mul() {
        for a in 0..=255u8 {
            assert_eq!(mul3(a), mul(a, 3));
        }
    }
}
