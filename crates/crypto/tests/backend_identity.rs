//! Property tests: every AES backend in the crate is byte-identical to
//! every other, across modes, batch boundaries, odd tails, and the
//! tracked (store-resident) variants.
//!
//! This is the safety net under the batch/bitslice layer: the pager,
//! dm-crypt, and the parallel lock path all swap backends per direction
//! (scalar for chained encryption, bitsliced for data-parallel
//! decryption), so any divergence between backends would corrupt user
//! data, not just fail a benchmark.

use proptest::collection::vec;
use proptest::prelude::*;
use sentry_crypto::modes::{
    cbc_decrypt, cbc_decrypt_extents, cbc_encrypt, cbc_encrypt_extents, ctr_crypt,
    ctr_crypt_extents, ctr_xor, xts_crypt_extents, xts_decrypt, xts_encrypt,
};
use sentry_crypto::{
    Aes, AesRef, AesStateLayout, BitslicedAes, KeySize, TrackedAes, TrackedBitslicedAes, VecStore,
};

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        vec(any::<u8>(), 16..=16),
        vec(any::<u8>(), 24..=24),
        vec(any::<u8>(), 32..=32),
    ]
}

fn iv_strategy() -> impl Strategy<Value = [u8; 16]> {
    (any::<u64>(), any::<u64>()).prop_map(|(a, b)| {
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&a.to_le_bytes());
        iv[8..].copy_from_slice(&b.to_le_bytes());
        iv
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// CBC over block-aligned buffers: encrypt with the table backend,
    /// decrypt with each of the four others — reference, bitsliced, and
    /// the two tracked variants — and recover the plaintext.
    #[test]
    fn cbc_roundtrips_across_all_backends(
        key in key_strategy(),
        iv in iv_strategy(),
        nblocks in 1usize..48,
        seed in any::<u8>(),
    ) {
        let pt: Vec<u8> = (0..nblocks * 16).map(|i| seed.wrapping_add((i * 37) as u8)).collect();
        let table = Aes::new(&key).unwrap();
        let mut ct = pt.clone();
        cbc_encrypt(&table, &iv, &mut ct);

        let reference = AesRef::new(&key).unwrap();
        let mut d = ct.clone();
        cbc_decrypt(&reference, &iv, &mut d);
        prop_assert_eq!(&d, &pt, "reference");

        let bits = BitslicedAes::from_schedule(table.schedule());
        let mut d = ct.clone();
        cbc_decrypt(&bits, &iv, &mut d);
        prop_assert_eq!(&d, &pt, "bitsliced");

        let key_size = KeySize::from_key_len(key.len()).unwrap();
        let mut store = VecStore::new(AesStateLayout::for_key_size(key_size).total_bytes());
        let tracked = TrackedAes::init(&mut store, &key).unwrap();
        let mut d = ct.clone();
        tracked.cbc_decrypt(&mut store, &iv, &mut d);
        prop_assert_eq!(&d, &pt, "tracked table");

        let mut store = VecStore::new(AesStateLayout::bitsliced(key_size).total_bytes());
        let tracked_bits = TrackedBitslicedAes::init(&mut store, &key).unwrap();
        let mut d = ct.clone();
        tracked_bits.cbc_decrypt(&mut store, &iv, &mut d);
        prop_assert_eq!(&d, &pt, "tracked bitsliced");
    }

    /// Tracked CBC *encryption* (both variants) matches the untracked
    /// table backend bit for bit.
    #[test]
    fn tracked_encryption_matches_untracked(
        key in key_strategy(),
        iv in iv_strategy(),
        nblocks in 1usize..40,
        seed in any::<u8>(),
    ) {
        let pt: Vec<u8> = (0..nblocks * 16).map(|i| seed.wrapping_add((i * 23) as u8)).collect();
        let table = Aes::new(&key).unwrap();
        let mut expect = pt.clone();
        cbc_encrypt(&table, &iv, &mut expect);

        let key_size = KeySize::from_key_len(key.len()).unwrap();
        let mut store = VecStore::new(AesStateLayout::for_key_size(key_size).total_bytes());
        let tracked = TrackedAes::init(&mut store, &key).unwrap();
        let mut got = pt.clone();
        tracked.cbc_encrypt(&mut store, &iv, &mut got);
        prop_assert_eq!(&got, &expect, "tracked table");

        let mut store = VecStore::new(AesStateLayout::bitsliced(key_size).total_bytes());
        let tracked_bits = TrackedBitslicedAes::init(&mut store, &key).unwrap();
        let mut got = pt.clone();
        tracked_bits.cbc_encrypt(&mut store, &iv, &mut got);
        prop_assert_eq!(&got, &expect, "tracked bitsliced");
    }

    /// CTR with arbitrary (ragged) lengths: all three untracked backends
    /// generate the same keystream, including the odd 1–15 byte tail and
    /// counters near the batch boundary.
    #[test]
    fn ctr_streams_agree_with_odd_tails(
        key in key_strategy(),
        nonce in any::<u64>().prop_map(u64::to_le_bytes),
        counter in any::<u64>(),
        len in 1usize..700,
        seed in any::<u8>(),
    ) {
        let pt: Vec<u8> = (0..len).map(|i| seed.wrapping_add(i as u8)).collect();
        let table = Aes::new(&key).unwrap();
        let reference = AesRef::new(&key).unwrap();
        let bits = BitslicedAes::from_schedule(table.schedule());

        let mut a = pt.clone();
        ctr_xor(&table, &nonce, counter, &mut a);
        let mut b = pt.clone();
        ctr_xor(&reference, &nonce, counter, &mut b);
        let mut c = pt.clone();
        ctr_xor(&bits, &nonce, counter, &mut c);
        prop_assert_eq!(&a, &b, "table vs reference");
        prop_assert_eq!(&a, &c, "table vs bitsliced");
    }

    /// XTS (single-key XEX, the engine construction): encrypt with the
    /// table backend, decrypt with every other backend — reference,
    /// bitsliced, and both tracked variants — and recover the plaintext;
    /// all backends also agree on the ciphertext byte for byte.
    #[test]
    fn xts_agrees_and_roundtrips_across_all_backends(
        key in key_strategy(),
        tweak in iv_strategy(),
        nblocks in 1usize..48,
        seed in any::<u8>(),
    ) {
        let pt: Vec<u8> = (0..nblocks * 16).map(|i| seed.wrapping_add((i * 29) as u8)).collect();
        let table = Aes::new(&key).unwrap();
        let mut ct = pt.clone();
        xts_encrypt(&table, &table, &tweak, &mut ct);

        let reference = AesRef::new(&key).unwrap();
        let mut other = pt.clone();
        xts_encrypt(&reference, &reference, &tweak, &mut other);
        prop_assert_eq!(&other, &ct, "reference encrypt");

        let bits = BitslicedAes::from_schedule(table.schedule());
        let mut other = pt.clone();
        xts_encrypt(&bits, &bits, &tweak, &mut other);
        prop_assert_eq!(&other, &ct, "bitsliced encrypt");

        let mut d = ct.clone();
        xts_decrypt(&bits, &bits, &tweak, &mut d);
        prop_assert_eq!(&d, &pt, "bitsliced decrypt");

        let key_size = KeySize::from_key_len(key.len()).unwrap();
        let mut store = VecStore::new(AesStateLayout::for_key_size(key_size).total_bytes());
        let tracked = TrackedAes::init(&mut store, &key).unwrap();
        let mut d = ct.clone();
        tracked.xts_decrypt(&mut store, &tweak, &mut d);
        prop_assert_eq!(&d, &pt, "tracked table decrypt");
        let mut e = pt.clone();
        tracked.xts_encrypt(&mut store, &tweak, &mut e);
        prop_assert_eq!(&e, &ct, "tracked table encrypt");

        let mut store = VecStore::new(AesStateLayout::bitsliced(key_size).total_bytes());
        let tracked_bits = TrackedBitslicedAes::init(&mut store, &key).unwrap();
        let mut d = ct.clone();
        tracked_bits.xts_decrypt(&mut store, &tweak, &mut d);
        prop_assert_eq!(&d, &pt, "tracked bitsliced decrypt");
        let mut e = pt.clone();
        tracked_bits.xts_encrypt(&mut store, &tweak, &mut e);
        prop_assert_eq!(&e, &ct, "tracked bitsliced encrypt");
    }

    /// Page-mode CTR (full 128-bit counter block): every backend,
    /// tracked and untracked, produces the same stream, including ragged
    /// tails, and applying it twice is the identity.
    #[test]
    fn page_ctr_agrees_across_all_backends(
        key in key_strategy(),
        iv in iv_strategy(),
        len in 1usize..700,
        seed in any::<u8>(),
    ) {
        let pt: Vec<u8> = (0..len).map(|i| seed.wrapping_add((i * 13) as u8)).collect();
        let table = Aes::new(&key).unwrap();
        let mut ct = pt.clone();
        ctr_crypt(&table, &iv, &mut ct);

        let reference = AesRef::new(&key).unwrap();
        let mut other = pt.clone();
        ctr_crypt(&reference, &iv, &mut other);
        prop_assert_eq!(&other, &ct, "reference");

        let bits = BitslicedAes::from_schedule(table.schedule());
        let mut other = pt.clone();
        ctr_crypt(&bits, &iv, &mut other);
        prop_assert_eq!(&other, &ct, "bitsliced");

        let key_size = KeySize::from_key_len(key.len()).unwrap();
        let mut store = VecStore::new(AesStateLayout::for_key_size(key_size).total_bytes());
        let tracked = TrackedAes::init(&mut store, &key).unwrap();
        let mut other = pt.clone();
        tracked.ctr_crypt(&mut store, &iv, &mut other);
        prop_assert_eq!(&other, &ct, "tracked table");

        let mut store = VecStore::new(AesStateLayout::bitsliced(key_size).total_bytes());
        let tracked_bits = TrackedBitslicedAes::init(&mut store, &key).unwrap();
        let mut other = pt.clone();
        tracked_bits.ctr_crypt(&mut store, &iv, &mut other);
        prop_assert_eq!(&other, &ct, "tracked bitsliced");

        // Involution.
        ctr_crypt(&table, &iv, &mut ct);
        prop_assert_eq!(&ct, &pt, "ctr twice is identity");
    }

    /// The cross-extent XTS and CTR streaming paths equal per-extent
    /// application for arbitrary unit sizes and counts.
    #[test]
    fn xts_and_ctr_extents_equal_per_extent(
        key in key_strategy(),
        unit_blocks in 1usize..9,
        units in 1usize..12,
        seed in any::<u8>(),
    ) {
        let unit = unit_blocks * 16;
        let table = Aes::new(&key).unwrap();
        let bits = BitslicedAes::from_schedule(table.schedule());
        let ivs: Vec<[u8; 16]> = (0..units)
            .map(|i| [seed.wrapping_add((i * 43) as u8); 16])
            .collect();
        let pt: Vec<u8> = (0..units * unit).map(|i| seed.wrapping_mul(5).wrapping_add(i as u8)).collect();

        let mut expect = pt.clone();
        for (iv, chunk) in ivs.iter().zip(expect.chunks_exact_mut(unit)) {
            xts_encrypt(&table, &table, iv, chunk);
        }
        let mut got = pt.clone();
        xts_crypt_extents(&bits, &bits, true, &ivs, &mut got);
        prop_assert_eq!(&got, &expect, "xts extents encrypt");
        xts_crypt_extents(&bits, &bits, false, &ivs, &mut got);
        prop_assert_eq!(&got, &pt, "xts extents round-trip");

        let mut expect = pt.clone();
        for (iv, chunk) in ivs.iter().zip(expect.chunks_exact_mut(unit)) {
            ctr_crypt(&table, iv, chunk);
        }
        let mut got = pt.clone();
        ctr_crypt_extents(&bits, &ivs, &mut got);
        prop_assert_eq!(&got, &expect, "ctr extents");
        ctr_crypt_extents(&bits, &ivs, &mut got);
        prop_assert_eq!(&got, &pt, "ctr extents round-trip");
    }

    /// The cross-extent batched decrypt equals per-extent decryption for
    /// arbitrary unit sizes, including units that straddle the kernel's
    /// scratch-chunk boundary.
    #[test]
    fn extent_decrypt_equals_per_extent(
        key in key_strategy(),
        unit_blocks in 1usize..9,
        units in 1usize..12,
        seed in any::<u8>(),
    ) {
        let unit = unit_blocks * 16;
        let table = Aes::new(&key).unwrap();
        let bits = BitslicedAes::from_schedule(table.schedule());
        let ivs: Vec<[u8; 16]> = (0..units)
            .map(|i| [seed.wrapping_add((i * 41) as u8); 16])
            .collect();
        let pt: Vec<u8> = (0..units * unit).map(|i| seed.wrapping_mul(3).wrapping_add(i as u8)).collect();
        let mut ct = pt.clone();
        for (iv, chunk) in ivs.iter().zip(ct.chunks_exact_mut(unit)) {
            cbc_encrypt(&table, iv, chunk);
        }
        let mut got = ct.clone();
        cbc_decrypt_extents(&bits, &ivs, &mut got);
        prop_assert_eq!(&got, &pt, "batched extents");
        let mut per = ct;
        for (iv, chunk) in ivs.iter().zip(per.chunks_exact_mut(unit)) {
            cbc_decrypt(&table, iv, chunk);
        }
        prop_assert_eq!(&per, &pt, "per-extent");
    }

    /// The lane-filling batched *encrypt* equals per-extent serial CBC
    /// encryption for arbitrary unit sizes and counts — partial lane
    /// groups, single extents, and units spanning many batch rounds —
    /// and decrypting its output with a different backend round-trips.
    #[test]
    fn extent_encrypt_equals_per_extent(
        key in key_strategy(),
        unit_blocks in 1usize..9,
        units in 1usize..36,
        seed in any::<u8>(),
    ) {
        let unit = unit_blocks * 16;
        let table = Aes::new(&key).unwrap();
        let bits = BitslicedAes::from_schedule(table.schedule());
        let ivs: Vec<[u8; 16]> = (0..units)
            .map(|i| [seed.wrapping_add((i * 59) as u8); 16])
            .collect();
        let pt: Vec<u8> = (0..units * unit).map(|i| seed.wrapping_mul(7).wrapping_add(i as u8)).collect();

        let mut expect = pt.clone();
        for (iv, chunk) in ivs.iter().zip(expect.chunks_exact_mut(unit)) {
            cbc_encrypt(&table, iv, chunk);
        }
        let mut got = pt.clone();
        cbc_encrypt_extents(&bits, &ivs, &mut got);
        prop_assert_eq!(&got, &expect, "batched encrypt diverged from serial CBC");

        let mut back = got;
        cbc_decrypt_extents(&bits, &ivs, &mut back);
        prop_assert_eq!(&back, &pt, "extent round-trip");
    }
}
