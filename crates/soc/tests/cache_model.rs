//! Model-based verification of the PL310 cache: under any interleaving
//! of cached accesses, mask changes, flushes, and DMA, the *CPU's view*
//! of memory must match a flat reference model, and architectural
//! invariants must hold.
//!
//! This is the test that makes the locked-way security results
//! trustworthy: if the functional cache disagreed with a flat memory on
//! ordinary accesses, "the secret never reached DRAM" could simply mean
//! "the simulation lost it".

use proptest::collection::vec;
use proptest::prelude::*;
use sentry_soc::addr::DRAM_BASE;
use sentry_soc::cache::ALL_WAYS;
use sentry_soc::Soc;
use std::collections::HashMap;

/// Operations the fuzzer interleaves.
#[derive(Debug, Clone)]
enum Op {
    Write { off: u64, byte: u8, len: u8 },
    Read { off: u64, len: u8 },
    MaintenanceFlush,
    SetAllocMask(u8),
    SetFlushMask(u8),
    DmaRead { off: u64, len: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let span = 512 * 1024u64; // 512 KB working window
    prop_oneof![
        4 => (0..span, any::<u8>(), 1u8..65).prop_map(|(off, byte, len)| Op::Write { off, byte, len }),
        4 => (0..span, 1u8..65).prop_map(|(off, len)| Op::Read { off, len }),
        1 => Just(Op::MaintenanceFlush),
        1 => (1u8..=255).prop_map(Op::SetAllocMask),
        1 => any::<u8>().prop_map(Op::SetFlushMask),
        1 => (0..span, 1u8..65).prop_map(|(off, len)| Op::DmaRead { off, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// The CPU's cached view always equals the flat reference model,
    /// regardless of masks, flushes, and concurrent DMA reads.
    #[test]
    fn cached_view_matches_flat_memory(ops in vec(op_strategy(), 1..120)) {
        let mut soc = Soc::tegra3_small();
        let mut reference: HashMap<u64, u8> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Write { off, byte, len } => {
                    let data: Vec<u8> = (0..len).map(|i| byte.wrapping_add(i)).collect();
                    soc.mem_write(DRAM_BASE + off, &data).unwrap();
                    for (i, &b) in data.iter().enumerate() {
                        reference.insert(off + i as u64, b);
                    }
                }
                Op::Read { off, len } => {
                    let mut buf = vec![0u8; len as usize];
                    soc.mem_read(DRAM_BASE + off, &mut buf).unwrap();
                    for (i, &b) in buf.iter().enumerate() {
                        let expect = reference.get(&(off + i as u64)).copied().unwrap_or(0);
                        prop_assert_eq!(b, expect, "read mismatch at offset {}", off + i as u64);
                    }
                }
                Op::MaintenanceFlush => soc.cache_maintenance_flush(),
                Op::SetAllocMask(mask) => {
                    soc.in_secure_world(|soc| soc.set_cache_alloc_mask(mask)).unwrap();
                }
                Op::SetFlushMask(mask) => soc.set_cache_flush_mask(mask),
                Op::DmaRead { off, len } => {
                    // DMA may see stale data (that is the architecture);
                    // it must never *change* the CPU's view.
                    let _ = soc.dma_read(0, DRAM_BASE + off, len as usize);
                }
            }
        }

        // Final sweep: everything the reference knows must read back.
        for (&off, &byte) in &reference {
            let mut b = [0u8; 1];
            soc.mem_read(DRAM_BASE + off, &mut b).unwrap();
            prop_assert_eq!(b[0], byte, "final sweep at {}", off);
        }
    }

    /// After a full-mask maintenance flush, DRAM itself (as DMA sees it)
    /// agrees with the CPU view — the cache holds nothing dirty.
    #[test]
    fn full_flush_synchronizes_dram(ops in vec(op_strategy(), 1..60)) {
        let mut soc = Soc::tegra3_small();
        let mut reference: HashMap<u64, u8> = HashMap::new();
        for op in &ops {
            if let Op::Write { off, byte, len } = *op {
                let data: Vec<u8> = (0..len).map(|i| byte.wrapping_add(i)).collect();
                soc.mem_write(DRAM_BASE + off, &data).unwrap();
                for (i, &b) in data.iter().enumerate() {
                    reference.insert(off + i as u64, b);
                }
            }
        }
        soc.set_cache_flush_mask(ALL_WAYS);
        soc.cache_maintenance_flush();
        for (&off, &byte) in &reference {
            let via_dma = soc.dma_read(0, DRAM_BASE + off, 1).unwrap();
            prop_assert_eq!(via_dma[0], byte, "DRAM out of sync at {}", off);
        }
    }

    /// Lock-style pinning under fuzzing: data written while only one
    /// way is enabled, then excluded from allocation and flushing, is
    /// never visible to DMA no matter what traffic follows.
    #[test]
    fn pinned_lines_never_leak_under_fuzzing(
        ops in vec(op_strategy(), 1..80),
        secret_page in 0u64..8,
    ) {
        let mut soc = Soc::tegra3_small();
        // Manual lock sequence into way 0, window outside the fuzz span.
        let window = DRAM_BASE + (16 << 20) + secret_page * 4096;
        soc.cache_maintenance_flush();
        soc.in_secure_world(|soc| soc.set_cache_alloc_mask(0b0000_0001)).unwrap();
        let secret = [0xEEu8; 4096];
        soc.mem_write(window, &secret).unwrap();
        soc.in_secure_world(|soc| soc.set_cache_alloc_mask(0b1111_1110)).unwrap();
        soc.set_cache_flush_mask(0b1111_1110);

        for op in &ops {
            match *op {
                Op::Write { off, byte, len } => {
                    let data: Vec<u8> = (0..len).map(|i| byte.wrapping_add(i)).collect();
                    soc.mem_write(DRAM_BASE + off, &data).unwrap();
                }
                Op::Read { off, len } => {
                    let mut buf = vec![0u8; len as usize];
                    soc.mem_read(DRAM_BASE + off, &mut buf).unwrap();
                }
                Op::MaintenanceFlush => soc.cache_maintenance_flush(),
                // The fuzzer may *not* reprogram the lockdown masks here:
                // that is privileged state Sentry owns. DMA is fair game.
                Op::SetAllocMask(_) | Op::SetFlushMask(_) => {}
                Op::DmaRead { off, len } => {
                    let _ = soc.dma_read(0, DRAM_BASE + off, len as usize);
                }
            }
        }

        // The pinned data still reads back through the CPU...
        let mut buf = [0u8; 4096];
        soc.mem_read(window, &mut buf).unwrap();
        prop_assert_eq!(buf, secret);
        // ...and never reached DRAM.
        let via_dma = soc.dma_read(0, window, 4096).unwrap();
        prop_assert!(via_dma.iter().all(|&b| b != 0xEE), "pinned line leaked to DRAM");
    }
}
