//! ARM TrustZone: secure/normal worlds, protected ranges, and the secure
//! hardware fuse.
//!
//! TrustZone provides two virtual processors backed by hardware access
//! control (§3.1, §10). Sentry uses it for three things:
//!
//! 1. programming the PL310 lockdown registers (secure-world-only
//!    co-processor registers, §10);
//! 2. protecting iRAM from DMA by registering it as a protected range
//!    (§4.4 — iRAM is ordinary system memory to DMA controllers unless
//!    TrustZone software intervenes);
//! 3. reading the secure hardware fuse that seeds the persistent root
//!    key (§7, Bootstrapping).
//!
//! TrustZone does **not** defend against cold boot or bus monitoring:
//! secure-world memory is still ordinary DRAM (§10). The model reflects
//! that by doing nothing to DRAM contents.

use std::ops::Range;

/// The two TrustZone processor worlds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum World {
    /// Where the OS and applications run.
    Normal,
    /// Where the small trusted kernel runs.
    Secure,
}

/// A TrustZone-protected physical range and what it is shielded from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectedRange {
    /// The physical address range.
    pub range: Range<u64>,
    /// Deny all DMA-master access (the defence of §4.4).
    pub deny_dma: bool,
    /// Deny normal-world CPU access (full secure-world memory).
    pub deny_normal_cpu: bool,
}

/// The TrustZone state of the SoC.
#[derive(Debug, Clone)]
pub struct TrustZone {
    world: World,
    protected: Vec<ProtectedRange>,
    fuse: [u8; 32],
}

impl TrustZone {
    /// Create TrustZone state starting in the normal world, with the
    /// given device-unique fuse value (burned at provisioning time).
    #[must_use]
    pub fn new(fuse: [u8; 32]) -> Self {
        TrustZone {
            world: World::Normal,
            protected: Vec::new(),
            fuse,
        }
    }

    /// The currently executing world.
    #[must_use]
    pub fn world(&self) -> World {
        self.world
    }

    /// Switch worlds (the SMC instruction). The simulation trusts its
    /// callers to model the secure monitor correctly; the interesting
    /// property is *what* each world is allowed to do, which the `Soc`
    /// façade checks against [`TrustZone::world`].
    pub fn switch_world(&mut self, world: World) {
        self.world = world;
    }

    /// Run `f` in the secure world, restoring the previous world after.
    pub fn in_secure_world<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        let prev = self.world;
        self.world = World::Secure;
        let out = f(self);
        self.world = prev;
        out
    }

    /// Register a protected range. Only the secure world may do this;
    /// returns `false` if called from the normal world.
    #[must_use]
    pub fn protect(&mut self, range: ProtectedRange) -> bool {
        if self.world != World::Secure {
            return false;
        }
        self.protected.push(range);
        true
    }

    /// Remove all protections covering `addr` (secure world only).
    #[must_use]
    pub fn unprotect(&mut self, addr: u64) -> bool {
        if self.world != World::Secure {
            return false;
        }
        self.protected.retain(|p| !p.range.contains(&addr));
        true
    }

    /// Would a DMA access of `len` bytes at `addr` be allowed?
    ///
    /// TrustZone cannot authenticate DMA masters (§3.1), so protections
    /// apply to *all* DMA devices uniformly.
    #[must_use]
    pub fn dma_allowed(&self, addr: u64, len: u64) -> bool {
        !self
            .protected
            .iter()
            .any(|p| p.deny_dma && addr < p.range.end && addr + len > p.range.start)
    }

    /// Would a CPU access from the current world be allowed?
    #[must_use]
    pub fn cpu_allowed(&self, addr: u64, len: u64) -> bool {
        if self.world == World::Secure {
            return true;
        }
        !self
            .protected
            .iter()
            .any(|p| p.deny_normal_cpu && addr < p.range.end && addr + len > p.range.start)
    }

    /// Read the secure hardware fuse — "a random, hard-to-guess number
    /// only readable by code running inside ARM TrustZone" (§7).
    /// Returns `None` from the normal world.
    #[must_use]
    pub fn read_fuse(&self) -> Option<[u8; 32]> {
        (self.world == World::Secure).then_some(self.fuse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tz() -> TrustZone {
        TrustZone::new([7u8; 32])
    }

    #[test]
    fn fuse_requires_secure_world() {
        let mut t = tz();
        assert_eq!(t.read_fuse(), None);
        t.switch_world(World::Secure);
        assert_eq!(t.read_fuse(), Some([7u8; 32]));
    }

    #[test]
    fn protect_requires_secure_world() {
        let mut t = tz();
        let range = ProtectedRange {
            range: 0x1000..0x2000,
            deny_dma: true,
            deny_normal_cpu: false,
        };
        assert!(!t.protect(range.clone()));
        assert!(t.dma_allowed(0x1800, 4));
        t.switch_world(World::Secure);
        assert!(t.protect(range));
        assert!(!t.dma_allowed(0x1800, 4));
    }

    #[test]
    fn dma_check_covers_partial_overlap() {
        let mut t = tz();
        t.in_secure_world(|t| {
            assert!(t.protect(ProtectedRange {
                range: 0x1000..0x2000,
                deny_dma: true,
                deny_normal_cpu: false,
            }));
        });
        assert!(!t.dma_allowed(0x0FF0, 0x20), "overlap from below");
        assert!(!t.dma_allowed(0x1FF0, 0x20), "overlap from above");
        assert!(t.dma_allowed(0x0F00, 0x100), "adjacent below is fine");
        assert!(t.dma_allowed(0x2000, 0x100), "adjacent above is fine");
    }

    #[test]
    fn normal_cpu_denial_is_separate_from_dma() {
        let mut t = tz();
        t.in_secure_world(|t| {
            assert!(t.protect(ProtectedRange {
                range: 0x4000..0x5000,
                deny_dma: false,
                deny_normal_cpu: true,
            }));
        });
        assert!(t.dma_allowed(0x4000, 16));
        assert!(!t.cpu_allowed(0x4000, 16));
        t.switch_world(World::Secure);
        assert!(t.cpu_allowed(0x4000, 16));
    }

    #[test]
    fn in_secure_world_restores_previous_world() {
        let mut t = tz();
        t.in_secure_world(|t| {
            assert_eq!(t.world(), World::Secure);
        });
        assert_eq!(t.world(), World::Normal);
    }

    #[test]
    fn unprotect_removes_matching_ranges() {
        let mut t = tz();
        t.in_secure_world(|t| {
            assert!(t.protect(ProtectedRange {
                range: 0x1000..0x2000,
                deny_dma: true,
                deny_normal_cpu: true,
            }));
            assert!(t.unprotect(0x1800));
        });
        assert!(t.dma_allowed(0x1800, 4));
    }
}
