//! The simulation clock and the calibrated cost model.
//!
//! All timing in the reproduction is *simulated time*: a deterministic
//! nanosecond counter advanced by the cost model below. The constants are
//! calibrated so the experiment harness reproduces the paper's measured
//! shapes (e.g., generic AES at ~21 MB/s on the Tegra 3 and ~45 MB/s on
//! the Nexus 4, Figure 11). Changing a constant rescales absolute numbers
//! but preserves the qualitative results, which is what EXPERIMENTS.md
//! asserts.

/// A deterministic nanosecond clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// A clock starting at zero.
    #[must_use]
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time in nanoseconds.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Current simulated time in seconds.
    #[must_use]
    pub fn now_secs(&self) -> f64 {
        self.now_ns as f64 / 1e9
    }

    /// Advance the clock by `ns` nanoseconds.
    pub fn advance(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
    }

    /// Overwrite the current time.
    ///
    /// Exists for cost-model substitution: a caller that performs memory
    /// traffic through the simulated hierarchy but has a *calibrated*
    /// end-to-end cost for the whole operation (e.g., the kernel's
    /// freed-page zeroing thread, measured at 4.014 GB/s in the paper)
    /// rolls back the per-access charges and applies its own. Use
    /// sparingly and document each call site.
    pub fn set_now_ns(&mut self, ns: u64) {
        self.now_ns = ns;
    }

    /// Measure the simulated duration of `f` in nanoseconds.
    pub fn measure<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> (T, u64) {
        let start = self.now_ns;
        let out = f(self);
        (out, self.now_ns - start)
    }
}

/// Calibrated per-operation costs, in nanoseconds.
///
/// Each field documents the paper measurement it is calibrated against.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// L2 cache hit (CPU load/store served by the PL310), per 32-byte
    /// line touched. Calibrated with `aes_block_compute_ns` so table-
    /// driven AES with cache-resident state runs at the platform's
    /// generic-AES throughput (Figure 11).
    pub cache_hit_ns: u64,
    /// DRAM line fill / write-back over the bus, per 32-byte line.
    /// Roughly 60 ns on a Cortex-A9 class memory system.
    pub dram_line_ns: u64,
    /// iRAM access, per 32-byte span. On-SoC SRAM is slower than an L2
    /// hit but far faster than DRAM; the paper found AES On SoC in iRAM
    /// within 1% of generic AES (Figure 11, right).
    pub iram_access_ns: u64,
    /// Fixed arithmetic cost of one AES block (the non-memory part of 10
    /// rounds on one core).
    pub aes_block_compute_ns: u64,
    /// Taking a page fault into the kernel and returning (trap,
    /// handler dispatch, PTE update, TLB maintenance).
    pub page_fault_ns: u64,
    /// One context switch (register spill/restore and scheduler pass).
    pub context_switch_ns: u64,
    /// Programming the PL310 (lockdown register write, sync).
    pub cache_op_ns: u64,
    /// Full L2 clean-and-invalidate, per way flushed.
    pub cache_flush_way_ns: u64,
    /// memcpy of one 4 KiB page between on-SoC memory and DRAM.
    pub page_copy_ns: u64,
    /// Rate of the kernel's freed-page zeroing thread in bytes per
    /// second. Measured in the paper at 4.014 GB/s on the Nexus 4 (§7).
    pub zeroing_bytes_per_sec: f64,
}

impl CostModel {
    /// Costs calibrated for the NVIDIA Tegra 3 development board
    /// (quad Cortex-A9 @ 1.2 GHz): generic AES ≈ 21 MB/s (Figure 11,
    /// right).
    #[must_use]
    pub fn tegra3() -> Self {
        CostModel {
            cache_hit_ns: 2,
            dram_line_ns: 60,
            iram_access_ns: 3,
            aes_block_compute_ns: 750,
            page_fault_ns: 9_000,
            context_switch_ns: 12_000,
            cache_op_ns: 300,
            cache_flush_way_ns: 25_000,
            page_copy_ns: 2_600,
            zeroing_bytes_per_sec: 2.0e9,
        }
    }

    /// Costs calibrated for the Google Nexus 4 (quad Krait @ 1.5 GHz):
    /// generic AES ≈ 45 MB/s in user space (Figure 11, left).
    #[must_use]
    pub fn nexus4() -> Self {
        CostModel {
            cache_hit_ns: 1,
            dram_line_ns: 45,
            iram_access_ns: 2,
            aes_block_compute_ns: 350,
            // End-to-end cost of one Android page fault through Sentry's
            // modified handler (trap, dispatch, PTE/TLB maintenance,
            // crypto setup). Calibrated so Figure 3's on-demand
            // decryption overheads land at the paper's 0.2–4.3%.
            page_fault_ns: 100_000,
            context_switch_ns: 8_000,
            cache_op_ns: 250,
            cache_flush_way_ns: 20_000,
            page_copy_ns: 1_400,
            zeroing_bytes_per_sec: 4.014e9,
        }
    }

    /// Simulated time to zero `bytes` with the kernel zeroing thread.
    #[must_use]
    pub fn zeroing_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.zeroing_bytes_per_sec * 1e9) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_measures() {
        let mut c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(1_000);
        let ((), spent) = c.measure(|c| c.advance(500));
        assert_eq!(spent, 500);
        assert_eq!(c.now_ns(), 1_500);
        assert!((c.now_secs() - 1.5e-6).abs() < 1e-12);
    }

    #[test]
    fn clock_saturates_instead_of_overflowing() {
        let mut c = SimClock::new();
        c.advance(u64::MAX);
        c.advance(10);
        assert_eq!(c.now_ns(), u64::MAX);
    }

    #[test]
    fn zeroing_rate_matches_paper_measurement() {
        // 1 GiB at 4.014 GB/s is about a quarter of a second.
        let m = CostModel::nexus4();
        let ns = m.zeroing_ns(1 << 30);
        let secs = ns as f64 / 1e9;
        assert!((0.2..0.3).contains(&secs), "got {secs}");
    }

    #[test]
    fn nexus_is_faster_than_tegra() {
        // The paper notes the Nexus 4 is "much faster" than the Tegra
        // board (Figure 11).
        let t = CostModel::tegra3();
        let n = CostModel::nexus4();
        assert!(n.aes_block_compute_ns < t.aes_block_compute_ns);
        assert!(n.dram_line_ns < t.dram_line_ns);
    }
}
