//! A small deterministic RNG for decay sampling.
//!
//! The remanence experiments must be exactly reproducible for a given
//! seed (the paper repeats each measurement five times and reports the
//! spread; our harness re-runs with different seeds). A SplitMix64
//! generator is more than adequate for sampling decay — cryptographic
//! quality is *not* required, and determinism plus `Clone` are.

/// SplitMix64: a tiny, high-quality, clonable PRNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is negligible
        // for simulation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Fill `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = DetRng::new(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DetRng::new(9);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = DetRng::new(11);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
