//! A small deterministic RNG for decay sampling.
//!
//! The remanence experiments must be exactly reproducible for a given
//! seed (the paper repeats each measurement five times and reports the
//! spread; our harness re-runs with different seeds). A SplitMix64
//! generator is more than adequate for sampling decay — cryptographic
//! quality is *not* required, and determinism plus `Clone` are.

/// SplitMix64: a tiny, high-quality, clonable PRNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is negligible
        // for simulation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Fill `buf` with random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// The seed bundle one fleet device derives from the fleet master seed.
///
/// A fleet run is reproducible from a single `master_seed`, but each
/// device must draw its workload events, failpoint steps, tamper
/// targets, and SoC decay from *independent* streams — otherwise
/// replaying one failing device standalone would require replaying the
/// whole fleet to reconstruct its RNG state. `DeviceSeeds::split`
/// derives all four from `(master_seed, device_index)` alone, so any
/// fleet cell replays standalone given just those two numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceSeeds {
    /// Seed for the device's [`crate::SocConfig`] (DRAM decay sampling).
    pub soc: u64,
    /// Seed for the workload event stream (event kinds, pages, fills).
    pub workload: u64,
    /// Seed for failpoint placement (`Failpoints::arm_seeded`).
    pub failpoint: u64,
    /// Seed for tamper placement (target page, bit offset).
    pub tamper: u64,
}

impl DeviceSeeds {
    /// Split `master_seed` into device `device_index`'s seed bundle.
    ///
    /// Jumps a SplitMix64 stream forward by `device_index` gamma steps
    /// (the split operation the generator is named for), then draws the
    /// four domain seeds in a fixed order. Different devices get
    /// well-separated streams; the same `(master, index)` pair always
    /// yields the same bundle.
    #[must_use]
    pub fn split(master_seed: u64, device_index: u64) -> Self {
        let mut rng =
            DetRng::new(master_seed.wrapping_add(device_index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        DeviceSeeds {
            soc: rng.next_u64(),
            workload: rng.next_u64(),
            failpoint: rng.next_u64(),
            tamper: rng.next_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = DetRng::new(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DetRng::new(9);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn device_seeds_are_deterministic_and_distinct() {
        let a = DeviceSeeds::split(42, 7);
        assert_eq!(a, DeviceSeeds::split(42, 7));
        let b = DeviceSeeds::split(42, 8);
        assert_ne!(a, b);
        // The four domains within one device are mutually distinct.
        let all = [a.soc, a.workload, a.failpoint, a.tamper];
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(all[i], all[j], "domains {i} and {j} collide");
            }
        }
    }

    #[test]
    fn device_seeds_vary_with_master() {
        assert_ne!(DeviceSeeds::split(1, 0), DeviceSeeds::split(2, 0));
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = DetRng::new(11);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
