//! The boot ROM and signed low-level firmware.
//!
//! Two firmware behaviours underpin Sentry's cold-boot immunity (§4.3):
//!
//! 1. On every **power-on** reset, the low-level firmware zeroes iRAM and
//!    resets the PL310 (zeroing the L2 arrays). A warm OS reboot — no
//!    power loss — skips this, which is why Table 2 shows iRAM surviving
//!    warm reboots at 100% but any power loss at 0%.
//! 2. The boot ROM **verifies the firmware's signature** against the
//!    manufacturer's key, so an attacker cannot simply install firmware
//!    with the zeroing logic removed (§4.3's "one attack vector would be
//!    to replace this firmware").
//!
//! The signature scheme is a keyed mixing checksum — a stand-in for the
//! RSA verification real mask ROMs do; its only required property here is
//! that images not signed with the manufacturer key fail verification.

use crate::cache::Pl310;
use crate::error::SocError;
use crate::iram::Iram;

/// A firmware image with its manufacturer signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareImage {
    /// The firmware code/data (opaque to the simulation).
    pub image: Vec<u8>,
    /// Whether this image performs the iRAM/L2 zeroing duty. Genuine
    /// manufacturer firmware always does; the attack experiments build
    /// doctored images with this turned off.
    pub zeroes_on_boot: bool,
    /// The signature over `image` and `zeroes_on_boot`.
    pub signature: u64,
}

/// The manufacturer signing key (symmetric, for the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManufacturerKey(pub u64);

impl ManufacturerKey {
    /// Sign a firmware image.
    #[must_use]
    pub fn sign(&self, image: &[u8], zeroes_on_boot: bool) -> FirmwareImage {
        FirmwareImage {
            image: image.to_vec(),
            zeroes_on_boot,
            signature: checksum(self.0, image, zeroes_on_boot),
        }
    }
}

/// Keyed mixing checksum used as the model's signature primitive.
fn checksum(key: u64, image: &[u8], zeroes_on_boot: bool) -> u64 {
    let mut h = key ^ 0x9E37_79B9_7F4A_7C15;
    for &b in image {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
        h = h.rotate_left(17);
    }
    h ^ u64::from(zeroes_on_boot)
}

/// The mask boot ROM: holds the manufacturer's verification key.
#[derive(Debug, Clone, Copy)]
pub struct BootRom {
    key: ManufacturerKey,
}

/// What a boot did, for experiment logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootReport {
    /// Whether this boot followed a power loss (cold) or was warm.
    pub power_was_lost: bool,
    /// Whether iRAM and the L2 cache were zeroed by firmware.
    pub zeroed_on_soc_memory: bool,
}

impl BootRom {
    /// A boot ROM trusting `key`.
    #[must_use]
    pub fn new(key: ManufacturerKey) -> Self {
        BootRom { key }
    }

    /// Verify and boot `firmware`.
    ///
    /// On a power-on (cold) boot with genuine firmware, iRAM is zeroed
    /// and the PL310 is reset. A warm reboot leaves both intact — the
    /// OS-reboot row of Table 2.
    ///
    /// # Errors
    ///
    /// [`SocError::BadFirmwareSignature`] if the image's signature does
    /// not verify; the device refuses to boot, so doctored firmware
    /// cannot disable the zeroing duty.
    pub fn boot(
        &self,
        firmware: &FirmwareImage,
        power_was_lost: bool,
        iram: &mut Iram,
        cache: &mut Pl310,
    ) -> Result<BootReport, SocError> {
        let expected = checksum(self.key.0, &firmware.image, firmware.zeroes_on_boot);
        if expected != firmware.signature {
            return Err(SocError::BadFirmwareSignature);
        }
        let mut zeroed = false;
        if power_was_lost && firmware.zeroes_on_boot {
            iram.zeroize();
            cache.power_on_reset();
            zeroed = true;
        } else if power_was_lost {
            // Hypothetical non-zeroing firmware (only reachable if signed
            // by the manufacturer): the hardware arrays keep whatever
            // survived decay.
            cache.power_on_reset();
        }
        Ok(BootReport {
            power_was_lost,
            zeroed_on_soc_memory: zeroed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{IRAM_BASE, IRAM_FIRMWARE_RESERVED};

    #[test]
    fn cold_boot_with_genuine_firmware_zeroes_iram() {
        let key = ManufacturerKey(0x1234);
        let rom = BootRom::new(key);
        let fw = key.sign(b"vendor blob", true);
        let mut iram = Iram::new(0);
        let mut cache = Pl310::new();
        assert!(iram.write(IRAM_BASE + IRAM_FIRMWARE_RESERVED, b"secret"));
        let report = rom.boot(&fw, true, &mut iram, &mut cache).unwrap();
        assert!(report.zeroed_on_soc_memory);
        assert!(iram.as_bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn warm_reboot_preserves_iram() {
        let key = ManufacturerKey(0x1234);
        let rom = BootRom::new(key);
        let fw = key.sign(b"vendor blob", true);
        let mut iram = Iram::new(0);
        let mut cache = Pl310::new();
        assert!(iram.write(IRAM_BASE + IRAM_FIRMWARE_RESERVED, b"secret"));
        let report = rom.boot(&fw, false, &mut iram, &mut cache).unwrap();
        assert!(!report.zeroed_on_soc_memory);
        let mut buf = [0u8; 6];
        iram.read(IRAM_BASE + IRAM_FIRMWARE_RESERVED, &mut buf);
        assert_eq!(&buf, b"secret");
    }

    #[test]
    fn tampered_firmware_is_rejected() {
        let key = ManufacturerKey(0x1234);
        let rom = BootRom::new(key);
        // Attacker takes genuine firmware and flips the zeroing flag.
        let mut fw = key.sign(b"vendor blob", true);
        fw.zeroes_on_boot = false;
        let mut iram = Iram::new(0);
        let mut cache = Pl310::new();
        let err = rom.boot(&fw, true, &mut iram, &mut cache).unwrap_err();
        assert_eq!(err, SocError::BadFirmwareSignature);
    }

    #[test]
    fn firmware_signed_with_wrong_key_is_rejected() {
        let rom = BootRom::new(ManufacturerKey(0x1234));
        let fw = ManufacturerKey(0xBEEF).sign(b"attacker blob", false);
        let mut iram = Iram::new(0);
        let mut cache = Pl310::new();
        assert!(rom.boot(&fw, true, &mut iram, &mut cache).is_err());
    }
}
