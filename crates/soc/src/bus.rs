//! The external memory bus between the SoC and DRAM.
//!
//! Every DRAM transaction — cache line fills and write-backs, uncached
//! CPU accesses, and DMA transfers — crosses this bus, where an attacker
//! with physical access can attach a bus monitoring probe (§3.1). iRAM
//! and L2-cache traffic stays inside the SoC package and never appears
//! here; that asymmetry is the heart of Sentry's defence.

use std::sync::Arc;

/// Direction of a bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusOp {
    /// DRAM → SoC (line fill, uncached load, DMA read).
    Read,
    /// SoC → DRAM (write-back, uncached store, DMA write).
    Write,
}

/// Who initiated a bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusMaster {
    /// The CPU cluster via the L2 cache (line fills and write-backs).
    Cache,
    /// The CPU performing an uncached access.
    CpuUncached,
    /// A DMA controller.
    Dma,
    /// The crypto accelerator fetching/storing data.
    CryptoAccel,
}

/// One observable bus transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusTransaction {
    /// Simulated time of the transaction, in nanoseconds.
    pub at_ns: u64,
    /// Direction.
    pub op: BusOp,
    /// Initiator.
    pub master: BusMaster,
    /// Physical DRAM address.
    pub addr: u64,
    /// The bytes on the wire.
    pub data: Vec<u8>,
}

/// A passive probe attached to the bus — the attacker's bus monitor, or
/// diagnostic instrumentation.
pub trait BusObserver: Send + Sync {
    /// Called for every transaction that crosses the bus.
    fn observe(&self, tx: &BusTransaction);
}

/// The memory bus: notifies observers and keeps traffic counters.
#[derive(Default)]
pub struct Bus {
    observers: Vec<Arc<dyn BusObserver>>,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl std::fmt::Debug for Bus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bus")
            .field("observers", &self.observers.len())
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .field("bytes_read", &self.bytes_read)
            .field("bytes_written", &self.bytes_written)
            .finish()
    }
}

impl Bus {
    /// A bus with no observers attached.
    #[must_use]
    pub fn new() -> Self {
        Bus::default()
    }

    /// Attach a probe. Attaching requires only physical access to the
    /// board — no software privilege — which is why the threat model
    /// considers it (§3.1).
    pub fn attach(&mut self, observer: Arc<dyn BusObserver>) {
        self.observers.push(observer);
    }

    /// Detach all probes.
    pub fn detach_all(&mut self) {
        self.observers.clear();
    }

    /// Number of attached observers.
    #[must_use]
    pub fn observer_count(&self) -> usize {
        self.observers.len()
    }

    /// Record a transaction, notifying all observers.
    pub fn transact(&mut self, at_ns: u64, op: BusOp, master: BusMaster, addr: u64, data: &[u8]) {
        match op {
            BusOp::Read => {
                self.reads += 1;
                self.bytes_read += data.len() as u64;
            }
            BusOp::Write => {
                self.writes += 1;
                self.bytes_written += data.len() as u64;
            }
        }
        if !self.observers.is_empty() {
            let tx = BusTransaction {
                at_ns,
                op,
                master,
                addr,
                data: data.to_vec(),
            };
            for obs in &self.observers {
                obs.observe(&tx);
            }
        }
    }

    /// Total read transactions.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total write transactions.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total bytes that crossed the bus toward the SoC.
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes that crossed the bus toward DRAM.
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Recorder {
        seen: Mutex<Vec<BusTransaction>>,
    }

    impl BusObserver for Recorder {
        fn observe(&self, tx: &BusTransaction) {
            self.seen
                .lock()
                .expect("recorder lock poisoned")
                .push(tx.clone());
        }
    }

    #[test]
    fn observers_see_all_traffic() {
        let mut bus = Bus::new();
        let rec = Arc::new(Recorder::default());
        bus.attach(rec.clone());
        bus.transact(
            10,
            BusOp::Write,
            BusMaster::Cache,
            0x8000_0000,
            b"secret-data",
        );
        bus.transact(20, BusOp::Read, BusMaster::Dma, 0x8000_0100, &[1, 2, 3]);
        let seen = rec.seen.lock().expect("recorder lock poisoned");
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].data, b"secret-data");
        assert_eq!(seen[1].master, BusMaster::Dma);
    }

    #[test]
    fn counters_track_bytes_and_ops() {
        let mut bus = Bus::new();
        bus.transact(
            0,
            BusOp::Write,
            BusMaster::CpuUncached,
            0x8000_0000,
            &[0u8; 32],
        );
        bus.transact(0, BusOp::Read, BusMaster::Cache, 0x8000_0000, &[0u8; 64]);
        assert_eq!(bus.writes(), 1);
        assert_eq!(bus.reads(), 1);
        assert_eq!(bus.bytes_written(), 32);
        assert_eq!(bus.bytes_read(), 64);
    }

    #[test]
    fn detach_stops_observation() {
        let mut bus = Bus::new();
        let rec = Arc::new(Recorder::default());
        bus.attach(rec.clone());
        bus.detach_all();
        bus.transact(0, BusOp::Write, BusMaster::Cache, 0x8000_0000, b"x");
        assert!(rec.seen.lock().expect("recorder lock poisoned").is_empty());
        assert_eq!(bus.observer_count(), 0);
    }
}
