//! The Nexus 4 crypto accelerator timing/energy model.
//!
//! The paper's microbenchmarks found the hardware AES engine *slower*
//! than the CPU for Sentry's workload (Figure 11, left) for two reasons:
//!
//! 1. Sentry encrypts 4 KiB pages, and the accelerator has a fixed
//!    per-operation setup cost (descriptor programming, DMA, interrupt)
//!    that dominates at small sizes;
//! 2. at device-lock time the accelerator's clock is **down-scaled** for
//!    power saving; fully awake it is about 4x faster (§8.2).
//!
//! Because the engine DMAs its input from DRAM, its traffic is visible
//! on the memory bus — unlike AES On SoC.
//!
//! [`AccelQueue`] models the engine's asynchronous side: descriptors are
//! programmed and the operation completes *out of line* while the CPU
//! runs ahead. The queue tracks a busy horizon against the simulation
//! clock; a submit captures the engine's clock state (setup + DMA +
//! streaming at the current power state) at that instant, and a wait
//! only advances the clock if the CPU actually caught up with the
//! engine. The difference — engine time that elapsed while the CPU was
//! doing something else — is the overlap the read pipeline exists to
//! harvest.

use crate::clock::SimClock;

/// Accelerator power states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccelPowerState {
    /// Full clock: the device is awake and interactive.
    Awake,
    /// Down-scaled clock: the device is locked/suspending — exactly when
    /// Sentry's encrypt-on-lock runs.
    DownScaled,
}

/// The crypto accelerator model.
#[derive(Debug, Clone, PartialEq)]
pub struct CryptoAccel {
    /// Streaming throughput at full clock, bytes per second.
    pub awake_bytes_per_sec: f64,
    /// Down-scaling factor while locked (the paper observed ~4x).
    pub downscale_factor: f64,
    /// Fixed setup cost per operation, nanoseconds.
    pub setup_ns: u64,
    /// Current power state.
    pub state: AccelPowerState,
    /// Energy drawn per byte at the *system* level, micro-joules. The
    /// paper's Figure 12 shows ~0.11 µJ/byte for hardware-accelerated
    /// encryption of 4 KiB pages — worse than the CPU, because the slow
    /// engine keeps the system awake longer.
    pub uj_per_byte: f64,
}

impl CryptoAccel {
    /// The Nexus 4 engine, calibrated to Figure 11/12: ~10 MB/s on 4 KiB
    /// pages while down-scaled, ~4x that when awake.
    #[must_use]
    pub fn nexus4() -> Self {
        CryptoAccel {
            awake_bytes_per_sec: 100.0e6,
            downscale_factor: 4.0,
            setup_ns: 60_000,
            state: AccelPowerState::DownScaled,
            uj_per_byte: 0.11,
        }
    }

    /// Clock down-scaling factor applied in the current power state.
    /// Down-scaling slows the entire engine — descriptor setup included —
    /// which is why the paper saw the whole operation run 4x faster with
    /// the phone fully awake (§8.2).
    #[must_use]
    pub fn effective_slowdown(&self) -> f64 {
        match self.state {
            AccelPowerState::Awake => 1.0,
            AccelPowerState::DownScaled => self.downscale_factor,
        }
    }

    /// Effective streaming rate in the current power state.
    #[must_use]
    pub fn effective_bytes_per_sec(&self) -> f64 {
        self.awake_bytes_per_sec / self.effective_slowdown()
    }

    /// Simulated duration of one encrypt/decrypt operation over `bytes`.
    #[must_use]
    pub fn op_duration_ns(&self, bytes: u64) -> u64 {
        let awake_ns = self.setup_ns as f64 + bytes as f64 / self.awake_bytes_per_sec * 1e9;
        (awake_ns * self.effective_slowdown()) as u64
    }

    /// Throughput in MB/s when repeatedly processing `chunk` bytes per
    /// operation — what Figure 11 plots for 4 KiB pages.
    #[must_use]
    pub fn throughput_mb_s(&self, chunk: u64) -> f64 {
        let ns = self.op_duration_ns(chunk);
        chunk as f64 / (ns as f64 / 1e9) / 1e6
    }

    /// Energy in joules to process `bytes`.
    #[must_use]
    pub fn energy_joules(&self, bytes: u64) -> f64 {
        bytes as f64 * self.uj_per_byte * 1e-6
    }
}

/// Handle to an operation submitted to an [`AccelQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccelOpId(u64);

/// A hardware misbehaviour staged against the *next* submitted
/// descriptor (set by the fault plane via
/// [`AccelQueue::inject_next_op_fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpFault {
    /// The descriptor wedges: completion is delayed by `wedge_ns` past
    /// the modeled duration ([`u64::MAX`] = never completes).
    Wedge {
        /// Extra completion delay in nanoseconds.
        wedge_ns: u64,
    },
    /// The descriptor completes on time but its status word reports
    /// corrupt output; the bounce window contents must be discarded.
    Corrupt,
    /// The descriptor runs `factor`× slower than the calibrated engine
    /// rate but otherwise completes normally.
    Slow {
        /// Duration multiplier.
        factor: u32,
    },
}

/// Outcome of a deadline-bounded [`AccelQueue::wait_deadline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The descriptor completed cleanly; the CPU stalled `stall_ns`.
    Done {
        /// Nanoseconds the CPU stalled waiting (0 = full overlap).
        stall_ns: u64,
    },
    /// The watchdog deadline expired first: the descriptor was
    /// abandoned (removed from the queue, engine reset) after the CPU
    /// burned `waited_ns` waiting. The bounce window must be zeroized
    /// and the work re-dispatched to the CPU path.
    TimedOut {
        /// Nanoseconds the CPU waited before giving up.
        waited_ns: u64,
    },
    /// The descriptor completed within the deadline but its status word
    /// reports corrupt output; the result must be discarded and the
    /// work re-dispatched.
    Corrupt {
        /// Nanoseconds the CPU stalled waiting.
        stall_ns: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingOp {
    id: u64,
    start_ns: u64,
    complete_at_ns: u64,
    bytes: u64,
    corrupt: bool,
}

/// Cumulative statistics of an [`AccelQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccelQueueStats {
    /// Descriptors submitted.
    pub ops: u64,
    /// Bytes across all descriptors.
    pub bytes: u64,
    /// Engine-busy time modeled across all descriptors, nanoseconds.
    pub busy_ns: u64,
    /// Time the CPU actually stalled waiting for completions.
    pub stall_ns: u64,
    /// Engine time hidden behind concurrent CPU progress (busy time the
    /// CPU never had to wait for) — the harvested overlap.
    pub overlap_ns: u64,
    /// Deepest the queue has ever been (descriptors in flight).
    pub max_depth: usize,
    /// Descriptors abandoned by a watchdog deadline expiring.
    pub timeouts: u64,
    /// Bytes across all abandoned descriptors.
    pub abandoned_bytes: u64,
    /// Descriptors whose status word reported corrupt output.
    pub corrupt_ops: u64,
}

/// An asynchronous descriptor queue in front of the crypto accelerator.
///
/// The queue is a pure timing model: the *bytes* of an operation are
/// transformed by the caller (the simulation computes ciphertext
/// host-side either way); the queue decides *when* the result is
/// architecturally visible. Descriptors serialize on the single engine:
/// each starts at `max(busy_horizon, submit time)` and completes after
/// [`CryptoAccel::op_duration_ns`] — captured per-op at submit, so a
/// power-state change (lock-time down-scaling) affects operations
/// submitted after it, not ones already in flight.
#[derive(Debug, Clone, Default)]
pub struct AccelQueue {
    next_id: u64,
    busy_until_ns: u64,
    pending: Vec<PendingOp>,
    /// Fault staged against the next submitted descriptor.
    next_fault: Option<OpFault>,
    /// Cumulative statistics.
    pub stats: AccelQueueStats,
}

impl AccelQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        AccelQueue::default()
    }

    /// Stage a hardware misbehaviour against the next submitted
    /// descriptor. Called by the fault plane
    /// ([`crate::Soc::failpoint`]) when an accel fault action fires;
    /// only one fault is staged at a time (a second call overwrites).
    pub fn inject_next_op_fault(&mut self, fault: OpFault) {
        self.next_fault = Some(fault);
    }

    /// Submit an extent-sized descriptor of `bytes` at simulated time
    /// `now_ns`, against the engine's *current* clock state.
    pub fn submit(&mut self, accel: &CryptoAccel, now_ns: u64, bytes: u64) -> AccelOpId {
        let start = self.busy_until_ns.max(now_ns);
        let mut dur = accel.op_duration_ns(bytes);
        let mut wedge_ns = 0u64;
        let mut corrupt = false;
        match self.next_fault.take() {
            Some(OpFault::Wedge { wedge_ns: w }) => wedge_ns = w,
            Some(OpFault::Corrupt) => corrupt = true,
            Some(OpFault::Slow { factor }) => dur = dur.saturating_mul(u64::from(factor)),
            None => {}
        }
        let complete_at_ns = start.saturating_add(dur).saturating_add(wedge_ns);
        self.busy_until_ns = complete_at_ns;
        let id = self.next_id;
        self.next_id += 1;
        self.pending.push(PendingOp {
            id,
            start_ns: start,
            complete_at_ns,
            bytes,
            corrupt,
        });
        self.stats.ops += 1;
        self.stats.bytes += bytes;
        self.stats.busy_ns += dur;
        self.stats.max_depth = self.stats.max_depth.max(self.pending.len());
        AccelOpId(id)
    }

    /// When the given in-flight operation will complete, if it is still
    /// pending.
    #[must_use]
    pub fn completion_ns(&self, id: AccelOpId) -> Option<u64> {
        self.pending
            .iter()
            .find(|op| op.id == id.0)
            .map(|op| op.complete_at_ns)
    }

    /// Descriptors still in flight at `now_ns` (submitted and not yet
    /// complete).
    #[must_use]
    pub fn depth_at(&self, now_ns: u64) -> usize {
        self.pending
            .iter()
            .filter(|op| op.complete_at_ns > now_ns)
            .count()
    }

    /// Descriptors not yet retired by [`AccelQueue::wait`].
    #[must_use]
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Retire `id`: advance `clock` to the operation's completion if the
    /// CPU got here first, and account the stalled/overlapped split.
    /// Returns the nanoseconds the CPU stalled (zero when the engine
    /// finished while the CPU was busy elsewhere — full overlap).
    pub fn wait(&mut self, id: AccelOpId, clock: &mut SimClock) -> u64 {
        let Some(pos) = self.pending.iter().position(|op| op.id == id.0) else {
            return 0;
        };
        let op = self.pending.remove(pos);
        let now = clock.now_ns();
        let stall = op.complete_at_ns.saturating_sub(now);
        clock.advance(stall);
        self.stats.stall_ns += stall;
        self.stats.overlap_ns += dur_of(&op).saturating_sub(stall);
        stall
    }

    /// Retire `id` under a watchdog: wait at most until the absolute
    /// simulated time `deadline_ns`.
    ///
    /// * Completion at or before the deadline retires the op exactly
    ///   like [`AccelQueue::wait`] and returns [`WaitOutcome::Done`] —
    ///   or [`WaitOutcome::Corrupt`] when the descriptor status word
    ///   reports bad output (the op is retired either way; the caller
    ///   must discard the bounce window).
    /// * Otherwise the op is **abandoned**: it is removed from the
    ///   queue, the engine is reset (the busy horizon collapses to the
    ///   deadline, releasing descriptors queued behind the hung one
    ///   from the wedge — their own completion times are unchanged),
    ///   the clock advances to the deadline (the CPU really did burn
    ///   the watchdog interval waiting), and the caller gets
    ///   [`WaitOutcome::TimedOut`]. The caller owns the cleanup: zeroize
    ///   the DMA bounce window, re-dispatch the work to the CPU path.
    pub fn wait_deadline(
        &mut self,
        id: AccelOpId,
        clock: &mut SimClock,
        deadline_ns: u64,
    ) -> WaitOutcome {
        let Some(pos) = self.pending.iter().position(|op| op.id == id.0) else {
            return WaitOutcome::Done { stall_ns: 0 };
        };
        let complete_at = self.pending[pos].complete_at_ns;
        if complete_at <= deadline_ns {
            let corrupt = self.pending[pos].corrupt;
            let stall_ns = self.wait(id, clock);
            if corrupt {
                self.stats.corrupt_ops += 1;
                return WaitOutcome::Corrupt { stall_ns };
            }
            return WaitOutcome::Done { stall_ns };
        }
        // Watchdog expired: abandon the descriptor and reset the engine.
        let op = self.pending.remove(pos);
        let now = clock.now_ns();
        let waited_ns = deadline_ns.saturating_sub(now);
        clock.advance(waited_ns);
        self.stats.stall_ns += waited_ns;
        self.stats.timeouts += 1;
        self.stats.abandoned_bytes += op.bytes;
        self.busy_until_ns = self.busy_until_ns.min(deadline_ns.max(now));
        WaitOutcome::TimedOut { waited_ns }
    }

    /// Retire every in-flight descriptor (advancing the clock past the
    /// last completion). Returns total stalled nanoseconds.
    pub fn drain(&mut self, clock: &mut SimClock) -> u64 {
        let ids: Vec<AccelOpId> = self.pending.iter().map(|op| AccelOpId(op.id)).collect();
        ids.into_iter().map(|id| self.wait(id, clock)).sum()
    }

    /// Whether the engine is idle at `now_ns`.
    #[must_use]
    pub fn is_idle(&self, now_ns: u64) -> bool {
        self.busy_until_ns <= now_ns && self.pending.is_empty()
    }
}

/// Engine-busy duration of one pending op (its start may have been
/// pushed past the submit time by the busy horizon).
fn dur_of(op: &PendingOp) -> u64 {
    op.complete_at_ns - op.start_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downscaled_pages_are_slow_awake_is_about_4x() {
        let mut accel = CryptoAccel::nexus4();
        let locked = accel.throughput_mb_s(4096);
        accel.state = AccelPowerState::Awake;
        let awake = accel.throughput_mb_s(4096);
        assert!(
            awake / locked > 2.5 && awake / locked < 4.5,
            "awake {awake} vs locked {locked}"
        );
    }

    #[test]
    fn small_chunks_are_setup_dominated() {
        let accel = CryptoAccel::nexus4();
        // 4 KiB pages achieve a fraction of streaming rate; 1 MiB buffers
        // approach it.
        let page = accel.throughput_mb_s(4096);
        let big = accel.throughput_mb_s(1 << 20);
        assert!(big > 2.0 * page, "page {page} MB/s vs bulk {big} MB/s");
    }

    #[test]
    fn locked_page_throughput_matches_figure_11() {
        // Figure 11 (left): hardware AES around 8-12 MB/s on 4 KiB pages
        // while the accelerator is down-scaled.
        let accel = CryptoAccel::nexus4();
        let mb_s = accel.throughput_mb_s(4096);
        assert!((6.0..16.0).contains(&mb_s), "got {mb_s} MB/s");
    }

    #[test]
    fn energy_tracks_bytes() {
        let accel = CryptoAccel::nexus4();
        let one_mb = accel.energy_joules(1 << 20);
        assert!((one_mb - 0.115).abs() < 0.01, "got {one_mb} J");
    }

    #[test]
    fn queued_op_overlaps_with_cpu_progress() {
        let mut accel = CryptoAccel::nexus4();
        accel.state = AccelPowerState::Awake;
        let mut q = AccelQueue::new();
        let mut clock = SimClock::new();
        let dur = accel.op_duration_ns(8192);

        let id = q.submit(&accel, clock.now_ns(), 8192);
        assert_eq!(q.depth_at(clock.now_ns()), 1);
        // CPU does other work that covers the whole engine op.
        clock.advance(dur + 1_000);
        let stalled = q.wait(id, &mut clock);
        assert_eq!(stalled, 0, "engine finished under CPU work");
        assert_eq!(q.stats.overlap_ns, dur);
        assert!(q.is_idle(clock.now_ns()));
    }

    #[test]
    fn wait_advances_clock_when_cpu_catches_up() {
        let accel = CryptoAccel::nexus4();
        let mut q = AccelQueue::new();
        let mut clock = SimClock::new();
        let dur = accel.op_duration_ns(4096);

        let id = q.submit(&accel, clock.now_ns(), 4096);
        let stalled = q.wait(id, &mut clock);
        assert_eq!(stalled, dur, "no CPU progress, full stall");
        assert_eq!(clock.now_ns(), dur);
        assert_eq!(q.stats.overlap_ns, 0);
    }

    #[test]
    fn ops_serialize_on_the_single_engine() {
        let mut accel = CryptoAccel::nexus4();
        accel.state = AccelPowerState::Awake;
        let mut q = AccelQueue::new();
        let mut clock = SimClock::new();
        let dur = accel.op_duration_ns(4096);

        let a = q.submit(&accel, clock.now_ns(), 4096);
        let b = q.submit(&accel, clock.now_ns(), 4096);
        assert_eq!(q.completion_ns(a), Some(dur));
        assert_eq!(q.completion_ns(b), Some(2 * dur), "b starts after a");
        assert_eq!(q.stats.max_depth, 2);
        q.drain(&mut clock);
        assert_eq!(clock.now_ns(), 2 * dur);
        assert_eq!(q.pending_ops(), 0);
    }

    #[test]
    fn wedged_op_times_out_at_the_watchdog_deadline() {
        let mut accel = CryptoAccel::nexus4();
        accel.state = AccelPowerState::Awake;
        let mut q = AccelQueue::new();
        let mut clock = SimClock::new();
        q.inject_next_op_fault(OpFault::Wedge { wedge_ns: u64::MAX });
        let id = q.submit(&accel, clock.now_ns(), 4096);
        let deadline = 2 * accel.op_duration_ns(4096);
        let out = q.wait_deadline(id, &mut clock, deadline);
        assert_eq!(
            out,
            WaitOutcome::TimedOut {
                waited_ns: deadline
            }
        );
        assert_eq!(clock.now_ns(), deadline, "CPU burned the watchdog");
        assert_eq!(q.stats.timeouts, 1);
        assert_eq!(q.stats.abandoned_bytes, 4096);
        assert_eq!(q.pending_ops(), 0, "abandoned op is gone");
        // Engine was reset: a fresh op completes normally.
        let id = q.submit(&accel, clock.now_ns(), 4096);
        assert!(matches!(
            q.wait_deadline(id, &mut clock, u64::MAX),
            WaitOutcome::Done { .. }
        ));
    }

    #[test]
    fn corrupt_op_completes_but_reports_bad_status() {
        let mut accel = CryptoAccel::nexus4();
        accel.state = AccelPowerState::Awake;
        let mut q = AccelQueue::new();
        let mut clock = SimClock::new();
        q.inject_next_op_fault(OpFault::Corrupt);
        let id = q.submit(&accel, clock.now_ns(), 4096);
        let dur = accel.op_duration_ns(4096);
        let out = q.wait_deadline(id, &mut clock, u64::MAX);
        assert_eq!(out, WaitOutcome::Corrupt { stall_ns: dur });
        assert_eq!(q.stats.corrupt_ops, 1);
        assert_eq!(q.stats.timeouts, 0);
    }

    #[test]
    fn slow_op_can_finish_within_a_generous_deadline() {
        let mut accel = CryptoAccel::nexus4();
        accel.state = AccelPowerState::Awake;
        let mut q = AccelQueue::new();
        let mut clock = SimClock::new();
        let dur = accel.op_duration_ns(4096);
        q.inject_next_op_fault(OpFault::Slow { factor: 10 });
        let id = q.submit(&accel, clock.now_ns(), 4096);
        assert_eq!(q.completion_ns(id), Some(10 * dur));
        // A 2x-margin watchdog abandons it; a 20x one would not.
        let out = q.wait_deadline(id, &mut clock, 2 * dur);
        assert!(matches!(out, WaitOutcome::TimedOut { .. }));
    }

    #[test]
    fn deadline_wait_on_healthy_op_matches_plain_wait() {
        let accel = CryptoAccel::nexus4();
        let mut q = AccelQueue::new();
        let mut clock = SimClock::new();
        let dur = accel.op_duration_ns(4096);
        let id = q.submit(&accel, clock.now_ns(), 4096);
        let out = q.wait_deadline(id, &mut clock, 4 * dur);
        assert_eq!(out, WaitOutcome::Done { stall_ns: dur });
        assert_eq!(q.stats.timeouts, 0);
        assert_eq!(q.stats.abandoned_bytes, 0);
    }

    #[test]
    fn submit_captures_clock_state_per_op() {
        let mut accel = CryptoAccel::nexus4();
        accel.state = AccelPowerState::Awake;
        let mut q = AccelQueue::new();
        let awake = q.submit(&accel, 0, 4096);
        // Device locks: ops submitted after the state change run 4x
        // slower, in-flight ones keep their captured duration.
        let awake_done = q.completion_ns(awake).unwrap();
        accel.state = AccelPowerState::DownScaled;
        let locked = q.submit(&accel, 0, 4096);
        let locked_dur = q.completion_ns(locked).unwrap() - awake_done;
        assert_eq!(q.completion_ns(awake).unwrap(), awake_done);
        assert_eq!(locked_dur, accel.op_duration_ns(4096));
        assert!(locked_dur > 3 * awake_done);
    }
}
