//! The Nexus 4 crypto accelerator timing/energy model.
//!
//! The paper's microbenchmarks found the hardware AES engine *slower*
//! than the CPU for Sentry's workload (Figure 11, left) for two reasons:
//!
//! 1. Sentry encrypts 4 KiB pages, and the accelerator has a fixed
//!    per-operation setup cost (descriptor programming, DMA, interrupt)
//!    that dominates at small sizes;
//! 2. at device-lock time the accelerator's clock is **down-scaled** for
//!    power saving; fully awake it is about 4x faster (§8.2).
//!
//! Because the engine DMAs its input from DRAM, its traffic is visible
//! on the memory bus — unlike AES On SoC.

/// Accelerator power states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccelPowerState {
    /// Full clock: the device is awake and interactive.
    Awake,
    /// Down-scaled clock: the device is locked/suspending — exactly when
    /// Sentry's encrypt-on-lock runs.
    DownScaled,
}

/// The crypto accelerator model.
#[derive(Debug, Clone, PartialEq)]
pub struct CryptoAccel {
    /// Streaming throughput at full clock, bytes per second.
    pub awake_bytes_per_sec: f64,
    /// Down-scaling factor while locked (the paper observed ~4x).
    pub downscale_factor: f64,
    /// Fixed setup cost per operation, nanoseconds.
    pub setup_ns: u64,
    /// Current power state.
    pub state: AccelPowerState,
    /// Energy drawn per byte at the *system* level, micro-joules. The
    /// paper's Figure 12 shows ~0.11 µJ/byte for hardware-accelerated
    /// encryption of 4 KiB pages — worse than the CPU, because the slow
    /// engine keeps the system awake longer.
    pub uj_per_byte: f64,
}

impl CryptoAccel {
    /// The Nexus 4 engine, calibrated to Figure 11/12: ~10 MB/s on 4 KiB
    /// pages while down-scaled, ~4x that when awake.
    #[must_use]
    pub fn nexus4() -> Self {
        CryptoAccel {
            awake_bytes_per_sec: 100.0e6,
            downscale_factor: 4.0,
            setup_ns: 60_000,
            state: AccelPowerState::DownScaled,
            uj_per_byte: 0.11,
        }
    }

    /// Clock down-scaling factor applied in the current power state.
    /// Down-scaling slows the entire engine — descriptor setup included —
    /// which is why the paper saw the whole operation run 4x faster with
    /// the phone fully awake (§8.2).
    #[must_use]
    pub fn effective_slowdown(&self) -> f64 {
        match self.state {
            AccelPowerState::Awake => 1.0,
            AccelPowerState::DownScaled => self.downscale_factor,
        }
    }

    /// Effective streaming rate in the current power state.
    #[must_use]
    pub fn effective_bytes_per_sec(&self) -> f64 {
        self.awake_bytes_per_sec / self.effective_slowdown()
    }

    /// Simulated duration of one encrypt/decrypt operation over `bytes`.
    #[must_use]
    pub fn op_duration_ns(&self, bytes: u64) -> u64 {
        let awake_ns = self.setup_ns as f64 + bytes as f64 / self.awake_bytes_per_sec * 1e9;
        (awake_ns * self.effective_slowdown()) as u64
    }

    /// Throughput in MB/s when repeatedly processing `chunk` bytes per
    /// operation — what Figure 11 plots for 4 KiB pages.
    #[must_use]
    pub fn throughput_mb_s(&self, chunk: u64) -> f64 {
        let ns = self.op_duration_ns(chunk);
        chunk as f64 / (ns as f64 / 1e9) / 1e6
    }

    /// Energy in joules to process `bytes`.
    #[must_use]
    pub fn energy_joules(&self, bytes: u64) -> f64 {
        bytes as f64 * self.uj_per_byte * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downscaled_pages_are_slow_awake_is_about_4x() {
        let mut accel = CryptoAccel::nexus4();
        let locked = accel.throughput_mb_s(4096);
        accel.state = AccelPowerState::Awake;
        let awake = accel.throughput_mb_s(4096);
        assert!(
            awake / locked > 2.5 && awake / locked < 4.5,
            "awake {awake} vs locked {locked}"
        );
    }

    #[test]
    fn small_chunks_are_setup_dominated() {
        let accel = CryptoAccel::nexus4();
        // 4 KiB pages achieve a fraction of streaming rate; 1 MiB buffers
        // approach it.
        let page = accel.throughput_mb_s(4096);
        let big = accel.throughput_mb_s(1 << 20);
        assert!(big > 2.0 * page, "page {page} MB/s vs bulk {big} MB/s");
    }

    #[test]
    fn locked_page_throughput_matches_figure_11() {
        // Figure 11 (left): hardware AES around 8-12 MB/s on 4 KiB pages
        // while the accelerator is down-scaled.
        let accel = CryptoAccel::nexus4();
        let mb_s = accel.throughput_mb_s(4096);
        assert!((6.0..16.0).contains(&mb_s), "got {mb_s} MB/s");
    }

    #[test]
    fn energy_tracks_bytes() {
        let accel = CryptoAccel::nexus4();
        let one_mb = accel.energy_joules(1 << 20);
        assert!((one_mb - 0.115).abs() < 0.01, "got {one_mb} J");
    }
}
