//! A simulated ARM System-on-Chip substrate for the Sentry reproduction.
//!
//! The paper's prototypes run on an NVIDIA Tegra 3 development board and a
//! Google Nexus 4. This crate stands in for that hardware with a
//! functional simulation of every component Sentry's security argument
//! touches:
//!
//! * [`dram`] — off-SoC DRAM with a data-remanence model (cold boot
//!   attacks read what survives a power event);
//! * [`iram`] — 256 KiB of on-SoC SRAM, the first 64 KiB reserved by
//!   firmware (overwriting it "crashes the tablet", §4.5);
//! * [`cache`] — a PL310-style shared L2 cache (1 MiB, 8 ways of 128 KiB,
//!   32-byte lines) with lockdown-by-way, a flush way-mask, and write-back
//!   behaviour matching the validation experiments of §4.2;
//! * [`bus`] — the CPU–DRAM memory bus; every DRAM transaction is routed
//!   through it and can be observed (bus-monitoring attacks);
//! * [`dma`] — DMA controllers that bypass the L2 cache and are subject to
//!   TrustZone range protection, plus the UART loopback debug port used to
//!   validate PL310 behaviour;
//! * [`trustzone`] — secure/normal worlds, protected ranges, and the
//!   secure hardware fuse used to derive the persistent root key;
//! * [`cpu`] — a register file whose context switches spill registers to a
//!   DRAM stack unless interrupts are disabled (the leak AES On SoC's IRQ
//!   discipline prevents);
//! * [`firmware`] — the signed boot ROM that zeroes iRAM and resets the L2
//!   cache on power-on reset;
//! * [`accel`] — the Nexus 4 crypto accelerator timing model, including
//!   the frequency down-scaling observed while the phone is locked;
//! * [`clock`] — a deterministic nanosecond clock and the calibrated cost
//!   model that turns simulated memory traffic into time.
//!
//! The [`soc::Soc`] façade wires these together and exposes the memory
//! routing a real SoC's interconnect performs: CPU accesses go through the
//! L2 cache to DRAM (observable on the bus) or directly to iRAM (never on
//! the bus); DMA goes straight to DRAM/iRAM, bypassing the cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod addr;
pub mod bus;
pub mod cache;
pub mod clock;
pub mod cpu;
pub mod dma;
pub mod dram;
pub mod error;
pub mod failpoint;
pub mod firmware;
pub mod iram;
pub mod rng;
pub mod soc;
pub mod trustzone;

pub use addr::{DRAM_BASE, IRAM_BASE, IRAM_SIZE, PAGE_SIZE};
pub use clock::{CostModel, SimClock};
pub use error::SocError;
pub use failpoint::{Failpoints, FaultAction, FaultPlan, FireRegime};
pub use soc::{Platform, Soc, SocConfig};
