//! Error types for the SoC simulation.

use std::error::Error;
use std::fmt;

/// Errors raised by the simulated SoC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocError {
    /// The physical address (or the span starting there) is not backed by
    /// DRAM or iRAM.
    Unmapped {
        /// Faulting physical address.
        addr: u64,
        /// Access length in bytes.
        len: usize,
    },
    /// A write touched the firmware-reserved low 64 KiB of iRAM, which
    /// crashes the device (§4.5 of the paper).
    IramFirmwareRegion {
        /// Faulting physical address.
        addr: u64,
    },
    /// A DMA transfer targeted a TrustZone-protected range and was denied.
    DmaDenied {
        /// Faulting physical address.
        addr: u64,
    },
    /// A CPU access from the normal world touched secure-world-only
    /// memory.
    SecureWorldOnly {
        /// Faulting physical address.
        addr: u64,
    },
    /// An operation (e.g., programming the PL310 lockdown registers or
    /// reading the hardware fuse) requires the TrustZone secure world.
    RequiresSecureWorld {
        /// Short name of the operation.
        op: &'static str,
    },
    /// Cache way locking is not available on this platform (e.g., the
    /// Nexus 4, whose firmware is locked).
    CacheLockingUnavailable,
    /// A firmware image failed boot-time signature verification.
    BadFirmwareSignature,
    /// The requested cache way index is out of range.
    InvalidWay {
        /// The offending way index.
        way: usize,
    },
    /// An armed failpoint cut power at the named site: the access that
    /// hit it never happened and the in-flight transition is dead.
    PowerLost {
        /// The failpoint site that fired.
        site: &'static str,
    },
    /// An armed failpoint injected a crypt-engine hardware error at the
    /// named site; no data was transformed.
    CryptFault {
        /// The failpoint site that fired.
        site: &'static str,
    },
    /// An armed failpoint aborted a multi-page batch at the named site.
    BatchAborted {
        /// The failpoint site that fired.
        site: &'static str,
    },
    /// An armed failpoint injected a transient storage-device I/O
    /// failure at the named site; a retry of the same request (after
    /// backoff) may succeed.
    DeviceFault {
        /// The failpoint site that fired.
        site: &'static str,
    },
}

impl SocError {
    /// True for the simulated-power-cut error injected by the fault
    /// plane — the one case where an interrupted transition must be
    /// left for [`recovery`](crate::failpoint) rather than retried.
    #[must_use]
    pub fn is_power_loss(&self) -> bool {
        matches!(self, SocError::PowerLost { .. })
    }
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::Unmapped { addr, len } => {
                write!(f, "unmapped physical access at {addr:#x} (+{len})")
            }
            SocError::IramFirmwareRegion { addr } => write!(
                f,
                "write to firmware-reserved iRAM at {addr:#x} would crash the device"
            ),
            SocError::DmaDenied { addr } => {
                write!(f, "DMA to {addr:#x} denied by TrustZone range protection")
            }
            SocError::SecureWorldOnly { addr } => {
                write!(f, "normal-world access to secure-only memory at {addr:#x}")
            }
            SocError::RequiresSecureWorld { op } => {
                write!(f, "operation {op:?} requires the TrustZone secure world")
            }
            SocError::CacheLockingUnavailable => {
                write!(
                    f,
                    "cache way locking is disabled by this platform's firmware"
                )
            }
            SocError::BadFirmwareSignature => {
                write!(
                    f,
                    "firmware image is not signed with the manufacturer's key"
                )
            }
            SocError::InvalidWay { way } => write!(f, "cache way index {way} out of range"),
            SocError::PowerLost { site } => {
                write!(f, "power lost at failpoint {site:?}")
            }
            SocError::CryptFault { site } => {
                write!(f, "crypt engine fault injected at failpoint {site:?}")
            }
            SocError::BatchAborted { site } => {
                write!(f, "batch aborted at failpoint {site:?}")
            }
            SocError::DeviceFault { site } => {
                write!(
                    f,
                    "transient device I/O fault injected at failpoint {site:?}"
                )
            }
        }
    }
}

impl Error for SocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SocError::Unmapped {
            addr: 0x1000,
            len: 4,
        };
        assert!(e.to_string().contains("0x1000"));
        let e = SocError::RequiresSecureWorld { op: "lockdown" };
        assert!(e.to_string().contains("lockdown"));
    }
}
