//! The simulated physical address map.
//!
//! Loosely modelled on the Tegra 3: iRAM sits in a low window, DRAM in a
//! high one. Everything in the workspace addresses memory through these
//! constants, so the map is defined exactly once.

use std::ops::Range;

/// Base physical address of on-SoC iRAM.
pub const IRAM_BASE: u64 = 0x4000_0000;

/// Total iRAM size: 256 KiB, as on the paper's Tegra 3 board.
pub const IRAM_SIZE: u64 = 256 * 1024;

/// Size of the firmware-reserved low region of iRAM. The paper's
/// prototype found the first 64 KiB in use by the tablet's firmware;
/// overwriting it crashes the device (§4.5).
pub const IRAM_FIRMWARE_RESERVED: u64 = 64 * 1024;

/// Base physical address of DRAM.
pub const DRAM_BASE: u64 = 0x8000_0000;

/// Page size used throughout the simulation (ARM small page).
pub const PAGE_SIZE: u64 = 4096;

/// The iRAM physical address range.
#[must_use]
pub fn iram_range() -> Range<u64> {
    IRAM_BASE..IRAM_BASE + IRAM_SIZE
}

/// The DRAM physical address range for a given DRAM size.
#[must_use]
pub fn dram_range(dram_size: u64) -> Range<u64> {
    DRAM_BASE..DRAM_BASE + dram_size
}

/// Classification of a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// On-SoC internal SRAM.
    Iram,
    /// Off-SoC DRAM.
    Dram,
    /// Not backed by any memory.
    Unmapped,
}

/// Classify a physical address for a device with `dram_size` bytes of
/// DRAM.
#[must_use]
pub fn classify(addr: u64, dram_size: u64) -> Region {
    if iram_range().contains(&addr) {
        Region::Iram
    } else if dram_range(dram_size).contains(&addr) {
        Region::Dram
    } else {
        Region::Unmapped
    }
}

/// Check that an access of `len` bytes starting at `addr` stays within a
/// single region, returning that region.
#[must_use]
pub fn classify_span(addr: u64, len: u64, dram_size: u64) -> Region {
    if len == 0 {
        return classify(addr, dram_size);
    }
    let first = classify(addr, dram_size);
    let last = classify(addr + len - 1, dram_size);
    if first == last {
        first
    } else {
        Region::Unmapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DRAM: u64 = 64 * 1024 * 1024;

    #[test]
    fn classify_boundaries() {
        assert_eq!(classify(IRAM_BASE, DRAM), Region::Iram);
        assert_eq!(classify(IRAM_BASE + IRAM_SIZE - 1, DRAM), Region::Iram);
        assert_eq!(classify(IRAM_BASE + IRAM_SIZE, DRAM), Region::Unmapped);
        assert_eq!(classify(DRAM_BASE, DRAM), Region::Dram);
        assert_eq!(classify(DRAM_BASE + DRAM - 1, DRAM), Region::Dram);
        assert_eq!(classify(DRAM_BASE + DRAM, DRAM), Region::Unmapped);
        assert_eq!(classify(0, DRAM), Region::Unmapped);
    }

    #[test]
    fn classify_span_rejects_straddles() {
        assert_eq!(
            classify_span(IRAM_BASE + IRAM_SIZE - 4, 8, DRAM),
            Region::Unmapped
        );
        assert_eq!(classify_span(DRAM_BASE, 4096, DRAM), Region::Dram);
        assert_eq!(classify_span(IRAM_BASE, 0, DRAM), Region::Iram);
    }

    #[test]
    fn firmware_reservation_is_a_quarter_of_iram() {
        assert_eq!(IRAM_FIRMWARE_RESERVED * 4, IRAM_SIZE);
    }
}
