//! Deterministic fault-injection plane.
//!
//! Sentry's security argument is about what DRAM looks like *after a
//! power event*, so the simulation must be killable at any instruction
//! boundary that matters — mid-lock, mid-eviction, between publishing a
//! ciphertext frame and flipping its PTE. This module provides named,
//! step-indexed failpoints threaded through the DRAM write path, the
//! crypt dispatch paths, pager eviction, and every per-page step of the
//! lock/unlock/fault/sweep transitions.
//!
//! The plane has three modes:
//!
//! * **Off** (default): every hit is a single branch on a `bool` —
//!   zero-cost on hot paths, nothing is recorded.
//! * **Record**: hits are counted and traced, nothing fires. A record
//!   pass over a schedule enumerates every reachable failpoint index so
//!   an exhaustive interruption sweep knows exactly where it can kill.
//! * **Armed**: a [`FaultPlan`] names one hit (by index, optionally
//!   filtered to one site) and the [`FaultAction`] to inject there.
//!   After firing the plane disarms itself, so recovery and retry code
//!   run fault-free.
//!
//! Everything is deterministic: the step counter advances exactly once
//! per hit, the simulation itself is seeded, and a `(seed, step)` pair
//! is a complete, exact repro command for any observed failure.

use crate::dram::PowerEvent;
use crate::rng::DetRng;

/// What an armed failpoint injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Power is cut at this instant. Execution is seized — the access
    /// that hit the failpoint does not happen, and the error propagates
    /// out of the transition as [`crate::SocError::PowerLost`].
    ///
    /// With `decay: None` the DRAM image is frozen exactly as the dying
    /// instant left it (the strictest, fully deterministic variant — a
    /// cold-boot scan of the frozen image is a superset of any decayed
    /// one). With `decay: Some(event)` the simulated power event is
    /// additionally applied to DRAM via
    /// [`crate::dram::Dram::apply_power_event`] (and, for events that
    /// cut SoC power, remanence decay to iRAM).
    PowerCut {
        /// Optional remanence event to apply to memory at the instant
        /// of death.
        decay: Option<PowerEvent>,
    },
    /// The crypt engine reports a hardware error; the dispatch fails
    /// with [`crate::SocError::CryptFault`] before transforming any
    /// data.
    CryptError,
    /// A multi-page batch is aborted mid-dispatch with
    /// [`crate::SocError::BatchAborted`].
    AbortBatch,
    /// An active memory attacker flips one DRAM bit at this instant —
    /// a bus-level glitch or rowhammer-style disturbance. Execution
    /// continues normally (the access that hit the failpoint succeeds):
    /// the point is to corrupt ciphertext *between* legitimate steps
    /// and observe whether the integrity plane catches it. The flip is
    /// applied raw to the DRAM array; any cache line covering the byte
    /// is dropped without write-back (the disturbance hits the DRAM
    /// cells behind the cache's back, and the stale line is modelled as
    /// already evicted so the corruption is observable).
    TamperDramBit {
        /// Physical DRAM address of the byte to disturb.
        addr: u64,
        /// Bit index (0–7) within that byte.
        bit: u8,
    },
    /// The next accelerator descriptor wedges: its completion interrupt
    /// is delayed by `wedge_ns` simulated nanoseconds ([`u64::MAX`]
    /// models "never completes"). Execution continues — the submit
    /// succeeds — and the hang is only observable at the wait, which is
    /// exactly why every wait needs a watchdog deadline.
    AccelWedge {
        /// Extra completion delay; `u64::MAX` = the descriptor never
        /// completes.
        wedge_ns: u64,
    },
    /// The next accelerator descriptor completes on time but with
    /// corrupt output; the driver sees the failure in the descriptor
    /// status word at the wait and must discard the bounce window.
    AccelCorrupt,
    /// The next accelerator descriptor runs `factor`× slower than the
    /// engine's calibrated rate (thermal throttle, clock glitch). The
    /// op still completes — but possibly past its watchdog deadline.
    AccelSlow {
        /// Duration multiplier applied to the next submitted op.
        factor: u32,
    },
    /// The storage device fails this request transiently with
    /// [`crate::SocError::DeviceFault`]; an immediate (or backed-off)
    /// retry of the same request may succeed.
    DiskError,
    /// The storage device stalls for `stall_ns` before completing this
    /// request successfully — a transient latency spike, not a failure.
    DiskStall {
        /// Extra request latency, nanoseconds.
        stall_ns: u64,
    },
}

/// How often an armed plan fires across the matching hits of its site.
///
/// One-shot kills ([`FireRegime::Once`]) model a single power cut or
/// glitch; the sustained regimes model *misbehaving* hardware — an
/// engine that stays broken ([`FireRegime::Persistent`]), fails one
/// request in `period` ([`FireRegime::Rate`]), or fails a contiguous
/// storm of requests and then heals ([`FireRegime::Burst`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FireRegime {
    /// Fire exactly once, at matching hit `after`, then disarm.
    Once,
    /// Fire at every matching hit from `after` onwards.
    Persistent,
    /// Fire at matching hits `after`, `after + period`,
    /// `after + 2·period`, … — a steady fault rate of one in `period`.
    Rate {
        /// Matching hits between consecutive firings (≥ 1).
        period: u64,
    },
    /// Fire at every matching hit in `[after, after + len)` — a fault
    /// storm of `len` consecutive requests — then disarm.
    Burst {
        /// Number of consecutive matching hits that fire.
        len: u64,
    },
}

/// One planned fault: fire `action` at the `after`-th (0-based) hit of
/// `site` (or of any site when `site` is `None`), repeating per the
/// plan's [`FireRegime`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Only hits of this named site count toward `after`; `None`
    /// matches every site (the global step index, as enumerated by a
    /// record pass).
    pub site: Option<&'static str>,
    /// 0-based index of the matching hit at which to fire (first).
    pub after: u64,
    /// What to inject when the plan fires.
    pub action: FaultAction,
    /// How often the plan fires across matching hits. The default
    /// ([`FireRegime::Once`]) disarms the plane after firing so
    /// recovery and retry code runs fault-free.
    pub regime: FireRegime,
}

impl FaultPlan {
    /// Plan that fires at global step `step` (as numbered by a record
    /// pass over the same schedule).
    #[must_use]
    pub fn at_step(step: u64, action: FaultAction) -> Self {
        FaultPlan {
            site: None,
            after: step,
            action,
            regime: FireRegime::Once,
        }
    }

    /// Plan that fires at the `after`-th hit of the named `site`.
    #[must_use]
    pub fn at_site(site: &'static str, after: u64, action: FaultAction) -> Self {
        FaultPlan {
            site: Some(site),
            after,
            action,
            regime: FireRegime::Once,
        }
    }

    /// Sustained-rate plan: fire at every `period`-th hit of `site`
    /// starting from the first — hardware that fails one request in
    /// `period` indefinitely. A `period` of 0 is clamped to 1 (every
    /// hit, equivalent to a persistent plan with `after` 0).
    #[must_use]
    pub fn at_rate(site: &'static str, period: u64, action: FaultAction) -> Self {
        FaultPlan {
            site: Some(site),
            after: 0,
            action,
            regime: FireRegime::Rate {
                period: period.max(1),
            },
        }
    }

    /// Fault-storm plan: fire at `len` consecutive hits of `site`
    /// starting at the `after`-th, then disarm — hardware that breaks,
    /// stays broken for a storm, and heals.
    #[must_use]
    pub fn burst(site: &'static str, after: u64, len: u64, action: FaultAction) -> Self {
        FaultPlan {
            site: Some(site),
            after,
            action,
            regime: FireRegime::Burst { len },
        }
    }

    /// Wedge plan: at the `after`-th hit of `site`, the next submitted
    /// accelerator descriptor's completion is delayed by `wedge_ns`
    /// ([`u64::MAX`] = never completes). Shorthand for
    /// [`FaultPlan::at_site`] with [`FaultAction::AccelWedge`].
    #[must_use]
    pub fn wedge_for_ns(site: &'static str, after: u64, wedge_ns: u64) -> Self {
        FaultPlan::at_site(site, after, FaultAction::AccelWedge { wedge_ns })
    }

    /// Make this plan persistent: it keeps firing at every matching hit
    /// from `after` onwards instead of self-disarming.
    #[must_use]
    pub fn persistent(mut self) -> Self {
        self.regime = FireRegime::Persistent;
        self
    }
}

/// A fault that actually fired: which site, at which global step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiredFault {
    /// The named site that fired.
    pub site: &'static str,
    /// The global step index at which it fired.
    pub step: u64,
    /// The action that was injected.
    pub action: FaultAction,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Mode {
    #[default]
    Off,
    Record,
    Armed,
}

/// The per-SoC failpoint registry. Default-constructed **off**: the
/// only cost a disabled hit pays is one branch.
#[derive(Debug, Default)]
pub struct Failpoints {
    mode: Mode,
    /// Global hits since the last `record()`/`arm()` reset.
    step: u64,
    /// Hits of the armed plan's site (equals `step` for site-less plans).
    plan_hits: u64,
    plan: Option<FaultPlan>,
    trace: Vec<(&'static str, u64)>,
    fired: Option<FiredFault>,
}

impl Failpoints {
    /// True when hits must be evaluated at all (record or armed mode).
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.mode != Mode::Off
    }

    /// Switch to record mode: count and trace every hit, fire nothing.
    /// Resets the step counter and trace.
    pub fn record(&mut self) {
        self.mode = Mode::Record;
        self.step = 0;
        self.plan_hits = 0;
        self.plan = None;
        self.trace.clear();
        self.fired = None;
    }

    /// Arm a plan. Resets the step counter, so indices are relative to
    /// this call — arm at the same point the record pass started.
    pub fn arm(&mut self, plan: FaultPlan) {
        self.mode = Mode::Armed;
        self.step = 0;
        self.plan_hits = 0;
        self.plan = Some(plan);
        self.trace.clear();
        self.fired = None;
    }

    /// Arm a seeded plan: the firing index is drawn deterministically
    /// from `seed` over `total_steps` reachable steps (as counted by a
    /// record pass over the same schedule).
    pub fn arm_seeded(&mut self, seed: u64, total_steps: u64, action: FaultAction) {
        let step = if total_steps == 0 {
            0
        } else {
            DetRng::new(seed).next_below(total_steps)
        };
        self.arm(FaultPlan::at_step(step, action));
    }

    /// Disarm and stop recording; hits go back to the zero-cost path.
    /// The trace and fired record survive for inspection.
    pub fn disarm(&mut self) {
        self.mode = Mode::Off;
        self.plan = None;
    }

    /// Global hits observed since the last `record()`/`arm()` reset.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// The `(site, step)` trace accumulated in record mode.
    #[must_use]
    pub fn trace(&self) -> &[(&'static str, u64)] {
        &self.trace
    }

    /// The fault that fired, if any has.
    #[must_use]
    pub fn fired(&self) -> Option<FiredFault> {
        self.fired
    }

    /// Evaluate a hit of `site`. Returns the action to inject, if the
    /// armed plan fires here. Callers go through
    /// [`crate::Soc::failpoint`], which also applies the action's
    /// memory effects; only reach for this directly in tests.
    pub fn hit(&mut self, site: &'static str) -> Option<FaultAction> {
        let step = self.step;
        self.step += 1;
        match self.mode {
            Mode::Off => None,
            Mode::Record => {
                self.trace.push((site, step));
                None
            }
            Mode::Armed => {
                let plan = self.plan?;
                if let Some(wanted) = plan.site {
                    if wanted != site {
                        return None;
                    }
                }
                let matching = self.plan_hits;
                self.plan_hits += 1;
                let (fires, exhausted) = match plan.regime {
                    FireRegime::Once => (matching == plan.after, matching >= plan.after),
                    FireRegime::Persistent => (matching >= plan.after, false),
                    FireRegime::Rate { period } => (
                        matching >= plan.after
                            && (matching - plan.after).is_multiple_of(period.max(1)),
                        false,
                    ),
                    FireRegime::Burst { len } => (
                        matching >= plan.after && matching - plan.after < len,
                        matching + 1 >= plan.after.saturating_add(len),
                    ),
                };
                if fires {
                    self.fired = Some(FiredFault {
                        site,
                        step,
                        action: plan.action,
                    });
                }
                if exhausted {
                    // Disarm so recovery and retry run fault-free.
                    self.mode = Mode::Off;
                    self.plan = None;
                }
                if fires {
                    Some(plan.action)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_never_fires_and_counts_nothing() {
        let mut fp = Failpoints::default();
        assert!(!fp.is_enabled());
        for _ in 0..10 {
            assert_eq!(fp.hit("dram.write"), None);
        }
        assert_eq!(fp.fired(), None);
        assert!(fp.trace().is_empty());
    }

    #[test]
    fn record_mode_traces_every_hit_in_order() {
        let mut fp = Failpoints::default();
        fp.record();
        assert_eq!(fp.hit("a"), None);
        assert_eq!(fp.hit("b"), None);
        assert_eq!(fp.hit("a"), None);
        assert_eq!(fp.trace(), &[("a", 0), ("b", 1), ("a", 2)]);
        assert_eq!(fp.steps(), 3);
    }

    #[test]
    fn armed_plan_fires_once_at_its_step_then_disarms() {
        let mut fp = Failpoints::default();
        fp.arm(FaultPlan::at_step(2, FaultAction::CryptError));
        assert_eq!(fp.hit("a"), None);
        assert_eq!(fp.hit("b"), None);
        assert_eq!(fp.hit("c"), Some(FaultAction::CryptError));
        let fired = fp.fired().unwrap();
        assert_eq!(fired.site, "c");
        assert_eq!(fired.step, 2);
        // Disarmed: later hits (recovery, retry) pass through.
        assert!(!fp.is_enabled());
        assert_eq!(fp.hit("c"), None);
    }

    #[test]
    fn site_filtered_plan_counts_only_its_site() {
        let mut fp = Failpoints::default();
        fp.arm(FaultPlan::at_site("crypt", 1, FaultAction::AbortBatch));
        assert_eq!(fp.hit("dram.write"), None);
        assert_eq!(fp.hit("crypt"), None); // 0th crypt hit
        assert_eq!(fp.hit("dram.write"), None);
        assert_eq!(fp.hit("crypt"), Some(FaultAction::AbortBatch));
    }

    #[test]
    fn persistent_plan_fires_on_every_matching_hit() {
        let mut fp = Failpoints::default();
        fp.arm(FaultPlan::at_site("crypt", 1, FaultAction::CryptError).persistent());
        assert_eq!(fp.hit("crypt"), None); // 0th hit: before `after`
        assert_eq!(fp.hit("crypt"), Some(FaultAction::CryptError));
        assert_eq!(fp.hit("dram.write"), None);
        // Still armed: every later matching hit fires too.
        assert!(fp.is_enabled());
        assert_eq!(fp.hit("crypt"), Some(FaultAction::CryptError));
        assert_eq!(fp.hit("crypt"), Some(FaultAction::CryptError));
        fp.disarm();
        assert_eq!(fp.hit("crypt"), None);
    }

    #[test]
    fn rate_plan_fires_every_period_th_hit_forever() {
        let mut fp = Failpoints::default();
        fp.arm(FaultPlan::at_rate("disk", 3, FaultAction::DiskError));
        let fired: Vec<bool> = (0..9).map(|_| fp.hit("disk").is_some()).collect();
        assert_eq!(
            fired,
            [true, false, false, true, false, false, true, false, false]
        );
        // Other sites never count toward the rate.
        assert_eq!(fp.hit("crypt"), None);
        assert!(fp.is_enabled(), "rate plans stay armed");
    }

    #[test]
    fn burst_plan_fires_len_consecutive_hits_then_disarms() {
        let mut fp = Failpoints::default();
        fp.arm(FaultPlan::burst(
            "accel.submit",
            1,
            2,
            FaultAction::AccelCorrupt,
        ));
        assert_eq!(fp.hit("accel.submit"), None); // 0th: before the storm
        assert_eq!(fp.hit("accel.submit"), Some(FaultAction::AccelCorrupt));
        assert_eq!(fp.hit("accel.submit"), Some(FaultAction::AccelCorrupt));
        // Storm over: the plane disarmed itself, the hardware healed.
        assert!(!fp.is_enabled());
        assert_eq!(fp.hit("accel.submit"), None);
    }

    #[test]
    fn wedge_plan_carries_its_delay() {
        let mut fp = Failpoints::default();
        fp.arm(FaultPlan::wedge_for_ns("accel.submit", 0, u64::MAX));
        assert_eq!(
            fp.hit("accel.submit"),
            Some(FaultAction::AccelWedge { wedge_ns: u64::MAX })
        );
        assert!(!fp.is_enabled(), "one-shot wedge disarms after firing");
    }

    #[test]
    fn seeded_arming_is_deterministic_and_in_range() {
        let mut a = Failpoints::default();
        let mut b = Failpoints::default();
        a.arm_seeded(7, 100, FaultAction::PowerCut { decay: None });
        b.arm_seeded(7, 100, FaultAction::PowerCut { decay: None });
        let mut fired_at = None;
        for i in 0..100 {
            let ra = a.hit("s");
            let rb = b.hit("s");
            assert_eq!(ra, rb, "same seed, same firing step");
            if ra.is_some() {
                fired_at = Some(i);
            }
        }
        assert!(fired_at.is_some(), "seeded plan fired within range");
    }
}
