//! The SoC façade: routing, permission checks, and the power/boot cycle.
//!
//! [`Soc`] wires the substrate together the way a real interconnect does:
//!
//! * CPU accesses to DRAM go through the L2 cache and (on miss or
//!   write-back) across the observable bus;
//! * CPU accesses to iRAM stay on-SoC — never on the bus, never cached
//!   in L2;
//! * DMA masters bypass the cache entirely and are checked against
//!   TrustZone range protections;
//! * the PL310 lockdown registers are programmable only from the
//!   TrustZone secure world, and only on platforms whose firmware
//!   enables cache locking (the Tegra 3 but not the Nexus 4, §7);
//! * power events decay DRAM/iRAM and re-run the signed boot ROM.

use crate::accel::{AccelQueue, CryptoAccel};
use crate::addr::{self, Region};
use crate::bus::Bus;
use crate::cache::{MemPath, Pl310};
use crate::clock::{CostModel, SimClock};
use crate::cpu::Cpu;
use crate::dma::{DmaController, UartDebugPort};
use crate::dram::{Dram, PowerEvent, RemanenceModel};
use crate::error::SocError;
use crate::failpoint::{Failpoints, FaultAction};
use crate::firmware::{BootReport, BootRom, FirmwareImage, ManufacturerKey};
use crate::iram::Iram;
use crate::trustzone::{TrustZone, World};

/// The two hardware platforms of the paper's prototypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// NVIDIA Tegra 3 development board: firmware access, cache locking
    /// available, no power instrumentation.
    Tegra3,
    /// Google Nexus 4: locked firmware (no cache locking, no TrustZone
    /// access for third parties), crypto accelerator, retail power
    /// characteristics.
    Nexus4,
}

impl Platform {
    /// Whether the platform's firmware allows programming the PL310
    /// lockdown registers ("this feature is often disabled by firmware",
    /// §1; the paper could enable it only on the Tegra 3).
    #[must_use]
    pub fn cache_locking_available(self) -> bool {
        matches!(self, Platform::Tegra3)
    }

    /// The calibrated cost model for this platform.
    #[must_use]
    pub fn cost_model(self) -> CostModel {
        match self {
            Platform::Tegra3 => CostModel::tegra3(),
            Platform::Nexus4 => CostModel::nexus4(),
        }
    }

    /// DRAM size of the paper's device (1 GB Tegra 3, 2 GB Nexus 4).
    #[must_use]
    pub fn dram_size(self) -> u64 {
        match self {
            Platform::Tegra3 => 1 << 30,
            Platform::Nexus4 => 2 << 30,
        }
    }
}

/// Configuration for building a [`Soc`].
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// Which hardware platform to model.
    pub platform: Platform,
    /// DRAM size in bytes (page aligned). Defaults to the platform's
    /// retail size; tests often shrink it.
    pub dram_size: u64,
    /// DRAM remanence calibration.
    pub remanence: RemanenceModel,
    /// Seed for deterministic decay sampling.
    pub seed: u64,
    /// The device-unique TrustZone fuse value.
    pub fuse: [u8; 32],
}

impl SocConfig {
    /// A configuration for `platform` with its retail DRAM size.
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        SocConfig {
            platform,
            dram_size: platform.dram_size(),
            remanence: RemanenceModel::default(),
            seed: 0xC01D_B007,
            fuse: [0xA5u8; 32],
        }
    }

    /// Shrink DRAM (useful for fast tests; storage is sparse either way).
    #[must_use]
    pub fn with_dram_size(mut self, size: u64) -> Self {
        self.dram_size = size;
        self
    }

    /// Use a specific decay seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The assembled SoC.
#[derive(Debug)]
pub struct Soc {
    /// Which platform this SoC models.
    pub platform: Platform,
    /// Off-SoC DRAM.
    pub dram: Dram,
    /// On-SoC SRAM.
    pub iram: Iram,
    /// The PL310 L2 cache.
    pub cache: Pl310,
    /// The external memory bus.
    pub bus: Bus,
    /// The simulation clock.
    pub clock: SimClock,
    /// Calibrated costs.
    pub costs: CostModel,
    /// The CPU core state.
    pub cpu: Cpu,
    /// TrustZone state.
    pub trustzone: TrustZone,
    /// The crypto accelerator (Nexus 4 only; present but unused on
    /// Tegra in the paper's experiments).
    pub accel: CryptoAccel,
    /// Asynchronous descriptor queue in front of the accelerator. Split
    /// from [`Soc::accel`] so callers can submit against the engine's
    /// current power state while mutating the queue.
    pub accel_queue: AccelQueue,
    /// The UART loopback debug port.
    pub uart: UartDebugPort,
    /// The deterministic fault-injection plane (off by default).
    pub failpoints: Failpoints,
    boot_rom: BootRom,
    firmware: FirmwareImage,
}

impl Soc {
    /// Build a powered-on, freshly booted SoC.
    #[must_use]
    pub fn new(config: SocConfig) -> Self {
        let key = ManufacturerKey(0x5EED_F00D_CAFE_0001);
        let firmware = key.sign(b"vendor low-level firmware v1", true);
        Soc {
            platform: config.platform,
            dram: Dram::new(config.dram_size, config.remanence, config.seed),
            iram: Iram::new(config.seed ^ 0x1BA0),
            cache: Pl310::new(),
            bus: Bus::new(),
            clock: SimClock::new(),
            costs: config.platform.cost_model(),
            cpu: Cpu::new(),
            trustzone: TrustZone::new(config.fuse),
            accel: CryptoAccel::nexus4(),
            accel_queue: AccelQueue::new(),
            uart: UartDebugPort::new(),
            failpoints: Failpoints::default(),
            boot_rom: BootRom::new(key),
            firmware,
        }
    }

    /// Evaluate the named failpoint. With the plane off (the default)
    /// this is one branch; in record mode it counts the hit; armed, it
    /// injects the planned [`FaultAction`] here:
    ///
    /// * [`FaultAction::PowerCut`] — optionally applies the simulated
    ///   power event to DRAM (and, for SoC-power-cutting events,
    ///   remanence decay to iRAM), then fails with
    ///   [`SocError::PowerLost`]. The caller's transition dies on the
    ///   spot, exactly like a battery pull.
    /// * [`FaultAction::CryptError`] — fails with
    ///   [`SocError::CryptFault`].
    /// * [`FaultAction::AbortBatch`] — fails with
    ///   [`SocError::BatchAborted`].
    /// * [`FaultAction::AccelWedge`] / [`FaultAction::AccelCorrupt`] /
    ///   [`FaultAction::AccelSlow`] — stage the misbehaviour against
    ///   the next descriptor submitted to [`Soc::accel_queue`] and
    ///   return `Ok`: the submit succeeds, and the fault only becomes
    ///   observable at the (watchdog-guarded) wait.
    /// * [`FaultAction::DiskError`] — fails with
    ///   [`SocError::DeviceFault`]; the caller may retry after backoff.
    /// * [`FaultAction::DiskStall`] — advances the simulation clock by
    ///   the stall and returns `Ok` (a latency spike, not a failure).
    ///
    /// # Errors
    ///
    /// The injected fault, when the armed plan fires at this hit.
    #[inline]
    pub fn failpoint(&mut self, site: &'static str) -> Result<(), SocError> {
        if !self.failpoints.is_enabled() {
            return Ok(());
        }
        match self.failpoints.hit(site) {
            None => Ok(()),
            Some(FaultAction::PowerCut { decay }) => {
                if let Some(event) = decay {
                    self.dram.apply_power_event(event);
                    match event {
                        PowerEvent::WarmReboot => {}
                        PowerEvent::ReflashTap => self.iram.apply_power_loss(0.2),
                        PowerEvent::HardReset { seconds } => self.iram.apply_power_loss(seconds),
                    }
                }
                Err(SocError::PowerLost { site })
            }
            Some(FaultAction::CryptError) => Err(SocError::CryptFault { site }),
            Some(FaultAction::AbortBatch) => Err(SocError::BatchAborted { site }),
            Some(FaultAction::TamperDramBit { addr, bit }) => {
                // Active attacker: flip one DRAM bit behind the cache's
                // back and let execution continue. Only DRAM can be
                // disturbed this way; tamper plans aimed elsewhere
                // (iRAM is on-SoC and out of reach) are no-ops.
                if addr::classify_span(addr, 1, self.dram.size()) == Region::Dram {
                    let mut byte = [0u8];
                    self.dram.read(addr, &mut byte);
                    byte[0] ^= 1 << (bit & 7);
                    self.dram.write(addr, &byte);
                    self.cache.invalidate_line(addr);
                }
                Ok(())
            }
            Some(FaultAction::AccelWedge { wedge_ns }) => {
                self.accel_queue
                    .inject_next_op_fault(crate::accel::OpFault::Wedge { wedge_ns });
                Ok(())
            }
            Some(FaultAction::AccelCorrupt) => {
                self.accel_queue
                    .inject_next_op_fault(crate::accel::OpFault::Corrupt);
                Ok(())
            }
            Some(FaultAction::AccelSlow { factor }) => {
                self.accel_queue
                    .inject_next_op_fault(crate::accel::OpFault::Slow { factor });
                Ok(())
            }
            Some(FaultAction::DiskError) => Err(SocError::DeviceFault { site }),
            Some(FaultAction::DiskStall { stall_ns }) => {
                self.clock.advance(stall_ns);
                Ok(())
            }
        }
    }

    /// Convenience: a Tegra 3 with a small DRAM for tests.
    #[must_use]
    pub fn tegra3_small() -> Self {
        Soc::new(SocConfig::new(Platform::Tegra3).with_dram_size(64 << 20))
    }

    /// Convenience: a Nexus 4 with a small DRAM for tests.
    #[must_use]
    pub fn nexus4_small() -> Self {
        Soc::new(SocConfig::new(Platform::Nexus4).with_dram_size(64 << 20))
    }

    fn validate(&self, addr: u64, len: usize, write: bool) -> Result<Region, SocError> {
        let region = addr::classify_span(addr, len as u64, self.dram.size());
        if region == Region::Unmapped {
            return Err(SocError::Unmapped { addr, len });
        }
        if !self.trustzone.cpu_allowed(addr, len as u64) {
            return Err(SocError::SecureWorldOnly { addr });
        }
        if write
            && region == Region::Iram
            && self.iram.enforce_firmware_reservation
            && self.iram.in_firmware_region(addr, len)
        {
            return Err(SocError::IramFirmwareRegion { addr });
        }
        Ok(region)
    }

    /// CPU read of physical memory through the normal (cached) path.
    ///
    /// # Errors
    ///
    /// [`SocError::Unmapped`] or [`SocError::SecureWorldOnly`].
    pub fn mem_read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), SocError> {
        match self.validate(addr, buf.len(), false)? {
            Region::Iram => {
                self.iram.read(addr, buf);
                self.clock
                    .advance(self.costs.iram_access_ns * (buf.len() as u64 / 32 + 1));
                Ok(())
            }
            Region::Dram => {
                let Soc {
                    dram,
                    bus,
                    clock,
                    costs,
                    cache,
                    ..
                } = self;
                let mut path = MemPath {
                    dram,
                    bus,
                    clock,
                    costs,
                };
                cache.read(addr, buf, &mut path);
                Ok(())
            }
            Region::Unmapped => unreachable!("validated above"),
        }
    }

    /// CPU write of physical memory through the normal (cached) path.
    ///
    /// # Errors
    ///
    /// [`SocError::Unmapped`], [`SocError::SecureWorldOnly`], or
    /// [`SocError::IramFirmwareRegion`].
    pub fn mem_write(&mut self, addr: u64, data: &[u8]) -> Result<(), SocError> {
        match self.validate(addr, data.len(), true)? {
            Region::Iram => {
                let ok = self.iram.write(addr, data);
                debug_assert!(ok, "reservation checked in validate");
                self.clock
                    .advance(self.costs.iram_access_ns * (data.len() as u64 / 32 + 1));
                Ok(())
            }
            Region::Dram => {
                self.failpoint("dram.write")?;
                let Soc {
                    dram,
                    bus,
                    clock,
                    costs,
                    cache,
                    ..
                } = self;
                let mut path = MemPath {
                    dram,
                    bus,
                    clock,
                    costs,
                };
                cache.write(addr, data, &mut path);
                Ok(())
            }
            Region::Unmapped => unreachable!("validated above"),
        }
    }

    /// CPU write that bypasses the cache (device/strongly-ordered
    /// mapping). DRAM targets hit memory immediately and are visible on
    /// the bus; used e.g. for kernel data structures that must reach
    /// DRAM, which is exactly what makes them attackable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Soc::mem_write`].
    pub fn mem_write_uncached(&mut self, addr: u64, data: &[u8]) -> Result<(), SocError> {
        match self.validate(addr, data.len(), true)? {
            Region::Iram => {
                let ok = self.iram.write(addr, data);
                debug_assert!(ok, "reservation checked in validate");
                Ok(())
            }
            Region::Dram => {
                self.dram.write(addr, data);
                self.clock
                    .advance(self.costs.dram_line_ns * (data.len() as u64 / 32 + 1));
                self.bus.transact(
                    self.clock.now_ns(),
                    crate::bus::BusOp::Write,
                    crate::bus::BusMaster::CpuUncached,
                    addr,
                    data,
                );
                Ok(())
            }
            Region::Unmapped => unreachable!("validated above"),
        }
    }

    /// CPU read that bypasses the cache. See [`Soc::mem_write_uncached`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Soc::mem_read`].
    pub fn mem_read_uncached(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), SocError> {
        match self.validate(addr, buf.len(), false)? {
            Region::Iram => {
                self.iram.read(addr, buf);
                Ok(())
            }
            Region::Dram => {
                self.dram.read(addr, buf);
                self.clock
                    .advance(self.costs.dram_line_ns * (buf.len() as u64 / 32 + 1));
                self.bus.transact(
                    self.clock.now_ns(),
                    crate::bus::BusOp::Read,
                    crate::bus::BusMaster::CpuUncached,
                    addr,
                    buf,
                );
                Ok(())
            }
            Region::Unmapped => unreachable!("validated above"),
        }
    }

    /// Program a DMA controller to read physical memory (bypassing the
    /// L2 cache). Any peripheral can do this — no TrustZone world check,
    /// only range protection.
    ///
    /// # Errors
    ///
    /// See [`DmaController::read_phys`].
    pub fn dma_read(&mut self, controller: u8, addr: u64, len: usize) -> Result<Vec<u8>, SocError> {
        let Soc {
            dram,
            bus,
            clock,
            costs,
            iram,
            trustzone,
            ..
        } = self;
        let mut path = MemPath {
            dram,
            bus,
            clock,
            costs,
        };
        DmaController { id: controller }.read_phys(addr, len, trustzone, iram, &mut path)
    }

    /// Program a DMA controller to write physical memory.
    ///
    /// # Errors
    ///
    /// See [`DmaController::write_phys`].
    pub fn dma_write(&mut self, controller: u8, addr: u64, data: &[u8]) -> Result<(), SocError> {
        let Soc {
            dram,
            bus,
            clock,
            costs,
            iram,
            trustzone,
            ..
        } = self;
        let mut path = MemPath {
            dram,
            bus,
            clock,
            costs,
        };
        DmaController { id: controller }.write_phys(addr, data, trustzone, iram, &mut path)
    }

    /// DMA a span of physical memory to the UART loopback debug port
    /// (the §4.2 validation harness).
    ///
    /// # Errors
    ///
    /// See [`DmaController::read_phys`].
    pub fn dma_to_uart(&mut self, addr: u64, len: usize) -> Result<(), SocError> {
        let Soc {
            dram,
            bus,
            clock,
            costs,
            iram,
            trustzone,
            uart,
            ..
        } = self;
        let mut path = MemPath {
            dram,
            bus,
            clock,
            costs,
        };
        uart.dma_from_memory(
            &DmaController { id: 0 },
            addr,
            len,
            trustzone,
            iram,
            &mut path,
        )
    }

    fn require_secure(&self, op: &'static str) -> Result<(), SocError> {
        if self.trustzone.world() == World::Secure {
            Ok(())
        } else {
            Err(SocError::RequiresSecureWorld { op })
        }
    }

    fn require_cache_locking(&self) -> Result<(), SocError> {
        if self.platform.cache_locking_available() {
            Ok(())
        } else {
            Err(SocError::CacheLockingUnavailable)
        }
    }

    /// Program the PL310 allocation ("enable way") mask. Secure world
    /// only; unavailable where firmware disables cache locking.
    ///
    /// # Errors
    ///
    /// [`SocError::RequiresSecureWorld`] or
    /// [`SocError::CacheLockingUnavailable`].
    pub fn set_cache_alloc_mask(&mut self, mask: u8) -> Result<(), SocError> {
        self.require_cache_locking()?;
        self.require_secure("pl310 lockdown")?;
        self.clock.advance(self.costs.cache_op_ns);
        self.cache.set_alloc_mask(mask);
        Ok(())
    }

    /// Program the OS-side flush way-mask (§4.5). This is kernel data,
    /// not a secure register, so no world check.
    pub fn set_cache_flush_mask(&mut self, mask: u8) {
        self.clock.advance(self.costs.cache_op_ns);
        self.cache.set_flush_mask(mask);
    }

    /// The patched Linux flush path: clean and invalidate the ways
    /// selected by the flush mask.
    pub fn cache_maintenance_flush(&mut self) {
        let Soc {
            dram,
            bus,
            clock,
            costs,
            cache,
            ..
        } = self;
        let mut path = MemPath {
            dram,
            bus,
            clock,
            costs,
        };
        cache.maintenance_flush(&mut path);
    }

    /// The *unpatched* full flush, which spills and unlocks locked ways
    /// (§4.2's discovered hazard). Kept for the experiments that
    /// demonstrate why the OS change is necessary.
    pub fn cache_flush_all_raw(&mut self) {
        let Soc {
            dram,
            bus,
            clock,
            costs,
            cache,
            ..
        } = self;
        let mut path = MemPath {
            dram,
            bus,
            clock,
            costs,
        };
        cache.flush_all_raw(&mut path);
    }

    /// Deliver a pending preemption: spill the register file to the
    /// process's kernel stack at `stack_addr` — in DRAM, through the
    /// cache, eventually visible to memory attacks. Returns whether a
    /// context switch happened.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from the stack write.
    pub fn deliver_preemption(&mut self, stack_addr: u64) -> Result<bool, SocError> {
        if let Some(regs) = self.cpu.take_preemption() {
            let mut bytes = Vec::with_capacity(regs.len() * 4);
            for r in regs {
                bytes.extend_from_slice(&r.to_le_bytes());
            }
            self.mem_write(stack_addr, &bytes)?;
            self.clock.advance(self.costs.context_switch_ns);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Apply a power event and reboot through the signed firmware.
    ///
    /// This is the cold-boot attack surface: after the call, DRAM holds
    /// whatever survived decay, and iRAM/L2 hold zeroes (power loss with
    /// genuine firmware) or their prior contents (warm reboot).
    ///
    /// # Errors
    ///
    /// [`SocError::BadFirmwareSignature`] if the installed firmware does
    /// not verify (only possible after
    /// [`Soc::install_firmware_unverified`]).
    pub fn power_cycle(&mut self, event: PowerEvent) -> Result<BootReport, SocError> {
        self.dram.apply_power_event(event);
        let power_was_lost = match event {
            PowerEvent::WarmReboot => false,
            PowerEvent::ReflashTap => {
                self.iram.apply_power_loss(0.2);
                true
            }
            PowerEvent::HardReset { seconds } => {
                self.iram.apply_power_loss(seconds);
                true
            }
        };
        self.cpu = Cpu::new();
        self.trustzone.switch_world(World::Normal);
        self.boot_rom.boot(
            &self.firmware,
            power_was_lost,
            &mut self.iram,
            &mut self.cache,
        )
    }

    /// Replace the installed firmware image without any verification —
    /// modelling an attacker with flash access. The *boot ROM* will still
    /// verify the signature at the next power cycle, which is the
    /// defence (§4.3).
    pub fn install_firmware_unverified(&mut self, firmware: FirmwareImage) {
        self.firmware = firmware;
    }

    /// Run `f` with TrustZone switched to the secure world, restoring
    /// the previous world afterwards.
    pub fn in_secure_world<T>(&mut self, f: impl FnOnce(&mut Soc) -> T) -> T {
        let prev = self.trustzone.world();
        self.trustzone.switch_world(World::Secure);
        let out = f(self);
        self.trustzone.switch_world(prev);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{DRAM_BASE, IRAM_BASE, IRAM_FIRMWARE_RESERVED};

    #[test]
    fn cached_dram_roundtrip() {
        let mut soc = Soc::tegra3_small();
        soc.mem_write(DRAM_BASE + 100, b"hello").unwrap();
        let mut buf = [0u8; 5];
        soc.mem_read(DRAM_BASE + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn iram_roundtrip_never_touches_bus() {
        let mut soc = Soc::tegra3_small();
        let addr = IRAM_BASE + IRAM_FIRMWARE_RESERVED + 64;
        soc.mem_write(addr, b"onsoc").unwrap();
        let mut buf = [0u8; 5];
        soc.mem_read(addr, &mut buf).unwrap();
        assert_eq!(&buf, b"onsoc");
        assert_eq!(soc.bus.reads() + soc.bus.writes(), 0);
    }

    #[test]
    fn firmware_iram_region_is_protected() {
        let mut soc = Soc::tegra3_small();
        let err = soc.mem_write(IRAM_BASE + 10, b"crash").unwrap_err();
        assert!(matches!(err, SocError::IramFirmwareRegion { .. }));
    }

    #[test]
    fn cache_lockdown_requires_secure_world_and_tegra() {
        let mut soc = Soc::tegra3_small();
        assert!(matches!(
            soc.set_cache_alloc_mask(0x01),
            Err(SocError::RequiresSecureWorld { .. })
        ));
        soc.in_secure_world(|soc| soc.set_cache_alloc_mask(0x01).unwrap());
        assert_eq!(soc.cache.alloc_mask(), 0x01);

        let mut nexus = Soc::nexus4_small();
        assert!(matches!(
            nexus.in_secure_world(|soc| soc.set_cache_alloc_mask(0x01)),
            Err(SocError::CacheLockingUnavailable)
        ));
    }

    #[test]
    fn warm_reboot_keeps_iram_cold_boot_zeroes_it() {
        let mut soc = Soc::tegra3_small();
        let addr = IRAM_BASE + IRAM_FIRMWARE_RESERVED;
        soc.mem_write(addr, b"SENTRYOK").unwrap();

        let report = soc.power_cycle(PowerEvent::WarmReboot).unwrap();
        assert!(!report.zeroed_on_soc_memory);
        let mut buf = [0u8; 8];
        soc.mem_read(addr, &mut buf).unwrap();
        assert_eq!(&buf, b"SENTRYOK");

        let report = soc.power_cycle(PowerEvent::ReflashTap).unwrap();
        assert!(report.zeroed_on_soc_memory);
        soc.mem_read(addr, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn preemption_spills_registers_to_dram() {
        let mut soc = Soc::tegra3_small();
        soc.cpu.set_reg(0, 0xAABBCCDD);
        soc.cpu.request_preemption();
        let stack = DRAM_BASE + 0x5000;
        assert!(soc.deliver_preemption(stack).unwrap());
        // The spill is now (cached) DRAM state; flush and look at raw DRAM.
        soc.cache_maintenance_flush();
        let mut raw = [0u8; 4];
        soc.dram.read(stack, &mut raw);
        assert_eq!(u32::from_le_bytes(raw), 0xAABBCCDD);
    }

    #[test]
    fn dma_bypasses_cache() {
        let mut soc = Soc::tegra3_small();
        // Write through the cache; the dirty line has not reached DRAM.
        soc.mem_write(DRAM_BASE + 0x2000, b"cached-only").unwrap();
        let via_dma = soc.dma_read(0, DRAM_BASE + 0x2000, 11).unwrap();
        assert_eq!(via_dma, vec![0u8; 11], "DMA must see stale DRAM");
    }

    #[test]
    fn doctored_firmware_fails_next_boot() {
        let mut soc = Soc::tegra3_small();
        let evil = FirmwareImage {
            image: b"no zeroing".to_vec(),
            zeroes_on_boot: false,
            signature: 0xDEAD,
        };
        soc.install_firmware_unverified(evil);
        assert!(matches!(
            soc.power_cycle(PowerEvent::ReflashTap),
            Err(SocError::BadFirmwareSignature)
        ));
    }

    #[test]
    fn unmapped_access_is_rejected() {
        let mut soc = Soc::tegra3_small();
        let mut buf = [0u8; 4];
        assert!(matches!(
            soc.mem_read(0x100, &mut buf),
            Err(SocError::Unmapped { .. })
        ));
    }
}
