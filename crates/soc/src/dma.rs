//! DMA controllers and the UART loopback debug port.
//!
//! DMA peripherals transfer data to and from physical memory without CPU
//! cooperation. Two properties matter to Sentry:
//!
//! * **DMA bypasses the L2 cache.** On these SoCs, cache coherence for
//!   DMA is handled in software (§4.4), so a DMA read returns whatever is
//!   in DRAM — *not* dirty data held in (locked) cache lines. This is
//!   both how the paper validated PL310 write-back behaviour (§4.2) and
//!   why locked-cache storage is immune to DMA attacks.
//! * **DMA reaches iRAM like any other memory** unless TrustZone range
//!   protection intervenes (§4.4).
//!
//! The [`UartDebugPort`] reproduces the validation apparatus of §4.2: a
//! high-speed serial controller's debugging port that loops back all data
//! written to it, letting the experimenter DMA physical memory out and
//! read the bytes over the serial line.

use crate::addr::{self, Region};
use crate::bus::{BusMaster, BusOp};
use crate::cache::MemPath;
use crate::error::SocError;
use crate::iram::Iram;
use crate::trustzone::TrustZone;

/// A DMA controller that can be programmed to move bytes between
/// physical memory and a device.
///
/// Programming a controller requires no CPU privilege beyond access to
/// its MMIO registers, which is why a malicious peripheral (Firewire-
/// style attack, §3.1) can use it even on a PIN-locked device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaController {
    /// Controller index (a device may have several).
    pub id: u8,
}

impl DmaController {
    /// Read `len` bytes of physical memory, bypassing the L2 cache.
    ///
    /// # Errors
    ///
    /// * [`SocError::DmaDenied`] if TrustZone protects any byte of the
    ///   span from DMA.
    /// * [`SocError::Unmapped`] if the span is not backed by DRAM or
    ///   iRAM.
    pub fn read_phys(
        &self,
        addr: u64,
        len: usize,
        tz: &TrustZone,
        iram: &Iram,
        path: &mut MemPath<'_>,
    ) -> Result<Vec<u8>, SocError> {
        if !tz.dma_allowed(addr, len as u64) {
            return Err(SocError::DmaDenied { addr });
        }
        let mut buf = vec![0u8; len];
        match addr::classify_span(addr, len as u64, path.dram.size()) {
            Region::Dram => {
                path.dram.read(addr, &mut buf);
                path.clock
                    .advance(path.costs.dram_line_ns * (len as u64 / 32 + 1));
                path.bus
                    .transact(path.clock.now_ns(), BusOp::Read, BusMaster::Dma, addr, &buf);
                Ok(buf)
            }
            Region::Iram => {
                // iRAM DMA stays on-SoC: no external bus transaction.
                iram.read(addr, &mut buf);
                path.clock
                    .advance(path.costs.iram_access_ns * (len as u64 / 32 + 1));
                Ok(buf)
            }
            Region::Unmapped => Err(SocError::Unmapped { addr, len }),
        }
    }

    /// Write bytes to physical memory, bypassing the L2 cache.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DmaController::read_phys`]; additionally
    /// [`SocError::IramFirmwareRegion`] for writes into reserved iRAM.
    pub fn write_phys(
        &self,
        addr: u64,
        data: &[u8],
        tz: &TrustZone,
        iram: &mut Iram,
        path: &mut MemPath<'_>,
    ) -> Result<(), SocError> {
        if !tz.dma_allowed(addr, data.len() as u64) {
            return Err(SocError::DmaDenied { addr });
        }
        match addr::classify_span(addr, data.len() as u64, path.dram.size()) {
            Region::Dram => {
                path.dram.write(addr, data);
                path.clock
                    .advance(path.costs.dram_line_ns * (data.len() as u64 / 32 + 1));
                path.bus.transact(
                    path.clock.now_ns(),
                    BusOp::Write,
                    BusMaster::Dma,
                    addr,
                    data,
                );
                Ok(())
            }
            Region::Iram => {
                if iram.write(addr, data) {
                    path.clock
                        .advance(path.costs.iram_access_ns * (data.len() as u64 / 32 + 1));
                    Ok(())
                } else {
                    Err(SocError::IramFirmwareRegion { addr })
                }
            }
            Region::Unmapped => Err(SocError::Unmapped {
                addr,
                len: data.len(),
            }),
        }
    }
}

/// The UART controller's loopback debugging port (§4.2).
///
/// Writing to the port stores the bytes in its FIFO; reading the serial
/// line returns them. The paper used this to get DMA-read memory out of
/// the device: "we modified the driver to DMA data to this debugging
/// port and then read the serial port to output its contents."
#[derive(Debug, Clone, Default)]
pub struct UartDebugPort {
    fifo: Vec<u8>,
}

impl UartDebugPort {
    /// An empty loopback port.
    #[must_use]
    pub fn new() -> Self {
        UartDebugPort::default()
    }

    /// DMA `len` bytes from physical memory into the port — the §4.2
    /// experiment's outbound half.
    ///
    /// # Errors
    ///
    /// Propagates the DMA errors of [`DmaController::read_phys`].
    pub fn dma_from_memory(
        &mut self,
        ctrl: &DmaController,
        addr: u64,
        len: usize,
        tz: &TrustZone,
        iram: &Iram,
        path: &mut MemPath<'_>,
    ) -> Result<(), SocError> {
        let data = ctrl.read_phys(addr, len, tz, iram, path)?;
        self.fifo.extend_from_slice(&data);
        Ok(())
    }

    /// Read everything looped back so far, draining the FIFO.
    pub fn read_serial(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.fifo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{DRAM_BASE, IRAM_BASE, IRAM_FIRMWARE_RESERVED};
    use crate::bus::Bus;
    use crate::clock::{CostModel, SimClock};
    use crate::dram::{Dram, RemanenceModel};
    use crate::trustzone::{ProtectedRange, World};

    struct Fix {
        dram: Dram,
        bus: Bus,
        clock: SimClock,
        costs: CostModel,
        iram: Iram,
        tz: TrustZone,
    }

    fn fix() -> Fix {
        Fix {
            dram: Dram::new(16 * 1024 * 1024, RemanenceModel::default(), 1),
            bus: Bus::new(),
            clock: SimClock::new(),
            costs: CostModel::tegra3(),
            iram: Iram::new(2),
            tz: TrustZone::new([0u8; 32]),
        }
    }

    macro_rules! path {
        ($f:expr) => {
            &mut MemPath {
                dram: &mut $f.dram,
                bus: &mut $f.bus,
                clock: &mut $f.clock,
                costs: &$f.costs,
            }
        };
    }

    #[test]
    fn dma_reads_dram_directly() {
        let mut f = fix();
        f.dram.write(DRAM_BASE + 0x100, b"plaintext");
        let ctrl = DmaController { id: 0 };
        let data = ctrl
            .read_phys(DRAM_BASE + 0x100, 9, &f.tz, &f.iram, path!(f))
            .unwrap();
        assert_eq!(&data, b"plaintext");
        assert!(f.bus.reads() > 0, "DRAM DMA crosses the bus");
    }

    #[test]
    fn dma_reads_iram_without_bus_traffic() {
        let mut f = fix();
        let addr = IRAM_BASE + IRAM_FIRMWARE_RESERVED;
        assert!(f.iram.write(addr, b"iram-secret"));
        let ctrl = DmaController { id: 0 };
        let data = ctrl.read_phys(addr, 11, &f.tz, &f.iram, path!(f)).unwrap();
        assert_eq!(&data, b"iram-secret");
        assert_eq!(f.bus.reads(), 0, "iRAM DMA is on-SoC");
    }

    #[test]
    fn trustzone_blocks_dma_to_protected_iram() {
        let mut f = fix();
        let addr = IRAM_BASE + IRAM_FIRMWARE_RESERVED;
        assert!(f.iram.write(addr, b"key"));
        f.tz.in_secure_world(|tz| {
            assert!(tz.protect(ProtectedRange {
                range: addr..addr + 4096,
                deny_dma: true,
                deny_normal_cpu: false,
            }));
        });
        assert_eq!(f.tz.world(), World::Normal);
        let ctrl = DmaController { id: 0 };
        let err = ctrl
            .read_phys(addr, 3, &f.tz, &f.iram, path!(f))
            .unwrap_err();
        assert_eq!(err, SocError::DmaDenied { addr });
    }

    #[test]
    fn uart_loopback_returns_dmaed_bytes() {
        let mut f = fix();
        f.dram.write(DRAM_BASE, b"0xFF pattern here");
        let ctrl = DmaController { id: 1 };
        let mut uart = UartDebugPort::new();
        uart.dma_from_memory(&ctrl, DRAM_BASE, 17, &f.tz, &f.iram, path!(f))
            .unwrap();
        assert_eq!(uart.read_serial(), b"0xFF pattern here");
        assert!(uart.read_serial().is_empty(), "FIFO drains on read");
    }

    #[test]
    fn unmapped_dma_errors() {
        let mut f = fix();
        let ctrl = DmaController { id: 0 };
        let err = ctrl
            .read_phys(0x100, 4, &f.tz, &f.iram, path!(f))
            .unwrap_err();
        assert!(matches!(err, SocError::Unmapped { .. }));
    }

    #[test]
    fn dma_write_to_reserved_iram_fails() {
        let mut f = fix();
        let ctrl = DmaController { id: 0 };
        let err = ctrl
            .write_phys(IRAM_BASE, b"x", &f.tz, &mut f.iram, path!(f))
            .unwrap_err();
        assert!(matches!(err, SocError::IramFirmwareRegion { .. }));
    }
}
