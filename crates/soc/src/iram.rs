//! On-SoC internal SRAM (iRAM).
//!
//! A small amount of SRAM on the SoC whose primary role is holding
//! peripheral firmware runtime state (§4.1). Sentry repurposes the
//! non-reserved portion as attack-proof storage: iRAM traffic never
//! crosses the external memory bus, and the boot firmware zeroes it on
//! every power-on reset, so cold boot recovers nothing.
//!
//! Physically, SRAM *does* exhibit data remanence — it decays more slowly
//! than DRAM (§4.1 cites Cakir et al. and Skorobogatov) — which is why
//! the firmware zeroing step is essential. The model keeps both effects
//! separate so experiments can show what an attacker would recover if a
//! vendor shipped firmware without the zeroing step.

use crate::addr::{IRAM_BASE, IRAM_FIRMWARE_RESERVED, IRAM_SIZE};
use crate::rng::DetRng;

/// SRAM remanence: retention is high over short power cuts.
#[derive(Debug, Clone, PartialEq)]
pub struct SramRemanence {
    /// Decay time constant in seconds at room temperature. SRAM retains
    /// data for tens of seconds (longer when cold).
    pub tau_secs: f64,
}

impl Default for SramRemanence {
    fn default() -> Self {
        SramRemanence { tau_secs: 30.0 }
    }
}

impl SramRemanence {
    /// Cell survival probability after `seconds` without power.
    #[must_use]
    pub fn survival(&self, seconds: f64) -> f64 {
        (-seconds / self.tau_secs).exp()
    }
}

/// The 256 KiB on-SoC SRAM.
#[derive(Debug, Clone)]
pub struct Iram {
    bytes: Vec<u8>,
    remanence: SramRemanence,
    rng: DetRng,
    /// When true (the default, matching the paper's Tegra 3), writes to
    /// the firmware-reserved low 64 KiB are rejected as device-crashing.
    pub enforce_firmware_reservation: bool,
}

impl Iram {
    /// Create zeroed iRAM with a deterministic decay seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Iram {
            bytes: vec![0u8; IRAM_SIZE as usize],
            remanence: SramRemanence::default(),
            rng: DetRng::new(seed),
            enforce_firmware_reservation: true,
        }
    }

    /// True if `addr..addr+len` lies within iRAM.
    #[must_use]
    pub fn contains(&self, addr: u64, len: usize) -> bool {
        addr >= IRAM_BASE && addr + len as u64 <= IRAM_BASE + IRAM_SIZE
    }

    /// True if the span overlaps the firmware-reserved low 64 KiB.
    #[must_use]
    pub fn in_firmware_region(&self, addr: u64, len: usize) -> bool {
        addr < IRAM_BASE + IRAM_FIRMWARE_RESERVED && addr + len as u64 > IRAM_BASE
    }

    /// Read iRAM. iRAM accesses never touch the external bus.
    ///
    /// # Panics
    ///
    /// Panics if the span falls outside iRAM; the SoC router validates
    /// addresses first.
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        assert!(self.contains(addr, buf.len()), "iRAM read out of range");
        let off = (addr - IRAM_BASE) as usize;
        buf.copy_from_slice(&self.bytes[off..off + buf.len()]);
    }

    /// Write iRAM.
    ///
    /// Returns `false` (and writes nothing) if the write touches the
    /// firmware-reserved region while enforcement is on — the caller
    /// surfaces this as [`crate::SocError::IramFirmwareRegion`].
    ///
    /// # Panics
    ///
    /// Panics if the span falls outside iRAM.
    #[must_use]
    pub fn write(&mut self, addr: u64, data: &[u8]) -> bool {
        assert!(self.contains(addr, data.len()), "iRAM write out of range");
        if self.enforce_firmware_reservation && self.in_firmware_region(addr, data.len()) {
            return false;
        }
        let off = (addr - IRAM_BASE) as usize;
        self.bytes[off..off + data.len()].copy_from_slice(data);
        true
    }

    /// Write without the firmware-region check — used only by the boot
    /// ROM itself (to install peripheral firmware state).
    pub fn write_as_firmware(&mut self, addr: u64, data: &[u8]) {
        assert!(self.contains(addr, data.len()), "iRAM write out of range");
        let off = (addr - IRAM_BASE) as usize;
        self.bytes[off..off + data.len()].copy_from_slice(data);
    }

    /// Apply SRAM decay for a power cut of `seconds`. (Firmware zeroing
    /// on the subsequent boot is modelled separately in
    /// [`crate::firmware`].)
    pub fn apply_power_loss(&mut self, seconds: f64) {
        let survival = self.remanence.survival(seconds);
        // Collect decayed cells first to avoid borrowing `bytes` while
        // sampling.
        for i in (0..self.bytes.len()).step_by(8) {
            if self.rng.next_f64() >= survival {
                let end = (i + 8).min(self.bytes.len());
                self.rng.fill(&mut self.bytes[i..end]);
            }
        }
    }

    /// Zero the entire iRAM (the boot firmware's power-on duty, §4.1).
    pub fn zeroize(&mut self) {
        self.bytes.fill(0);
    }

    /// Borrow the full contents (used by cold-boot attack dumps).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Count non-overlapping aligned occurrences of an 8-byte pattern.
    #[must_use]
    pub fn count_pattern(&self, pattern: &[u8; 8]) -> u64 {
        self.bytes
            .chunks_exact(8)
            .filter(|cell| cell == pattern)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_above_firmware_region() {
        let mut iram = Iram::new(1);
        let addr = IRAM_BASE + IRAM_FIRMWARE_RESERVED;
        assert!(iram.write(addr, b"hello"));
        let mut buf = [0u8; 5];
        iram.read(addr, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn firmware_region_writes_are_rejected() {
        let mut iram = Iram::new(1);
        assert!(!iram.write(IRAM_BASE, b"boom"));
        assert!(!iram.write(IRAM_BASE + IRAM_FIRMWARE_RESERVED - 2, b"boom"));
        // But the boot ROM may write there.
        iram.write_as_firmware(IRAM_BASE, b"boot");
        let mut buf = [0u8; 4];
        iram.read(IRAM_BASE, &mut buf);
        assert_eq!(&buf, b"boot");
    }

    #[test]
    fn sram_retains_across_short_cuts_but_decays_eventually() {
        let mut iram = Iram::new(3);
        let base = IRAM_BASE + IRAM_FIRMWARE_RESERVED;
        for i in 0..1000u64 {
            assert!(iram.write(base + i * 8, b"SENTRYOK"));
        }
        iram.apply_power_loss(2.0);
        let after_2s = iram.count_pattern(b"SENTRYOK");
        // SRAM decays slowly: ~94% survives 2 seconds.
        assert!(after_2s > 900, "after 2s: {after_2s}");
        iram.apply_power_loss(300.0);
        let after_long = iram.count_pattern(b"SENTRYOK");
        assert!(after_long < 10, "after long cut: {after_long}");
    }

    #[test]
    fn zeroize_clears_everything() {
        let mut iram = Iram::new(5);
        assert!(iram.write(IRAM_BASE + IRAM_FIRMWARE_RESERVED, &[0xFFu8; 128]));
        iram.zeroize();
        assert!(iram.as_bytes().iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let iram = Iram::new(0);
        let mut buf = [0u8; 4];
        iram.read(IRAM_BASE + IRAM_SIZE - 2, &mut buf);
    }
}
