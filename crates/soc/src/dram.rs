//! Off-SoC DRAM with a data-remanence model.
//!
//! DRAM is where all the attacks of the paper's threat model aim: its
//! contents survive power events to varying degrees (cold boot), its
//! traffic crosses an exposed bus (bus monitoring), and DMA controllers
//! read it without CPU cooperation (DMA attacks).
//!
//! Storage is a sparse map of 4 KiB frames so experiments can model a
//! 1–2 GB device cheaply while only touching a few megabytes.
//!
//! # Remanence model
//!
//! The paper measures remanence by filling memory with an 8-byte pattern,
//! applying a power event, and counting surviving pattern occurrences
//! (Table 2). We therefore model decay at 8-byte *cell* granularity: each
//! cell independently survives a power event with a probability drawn
//! from the calibrated [`RemanenceModel`]; non-surviving cells are
//! replaced with random bytes (partially decayed charge) — which is also
//! what makes recovered AES keys unusable when survival is low.

use crate::addr::{DRAM_BASE, PAGE_SIZE};
use crate::rng::DetRng;
use std::collections::BTreeMap;

/// A power event a device (and its DRAM) can be subjected to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PowerEvent {
    /// An OS reboot with no power loss: memory is untouched except for
    /// what the rebooting OS itself scribbles over.
    WarmReboot,
    /// Tapping the reset button — the short power disconnect used to
    /// reflash a device.
    ReflashTap,
    /// Holding reset: power is cut for `seconds`.
    HardReset {
        /// Duration of the power cut, in seconds.
        seconds: f64,
    },
}

/// Calibrated DRAM cell-survival probabilities (Table 2, DRAM column).
#[derive(Debug, Clone, PartialEq)]
pub struct RemanenceModel {
    /// Fraction of cells surviving a warm OS reboot (the rebooting OS
    /// overwrites a few percent of memory): 0.964 in the paper.
    pub warm_reboot: f64,
    /// Fraction surviving a reset-button tap: 0.975 in the paper.
    pub reflash_tap: f64,
    /// Fraction surviving a 2-second power cut at room temperature:
    /// 0.001 in the paper.
    pub hard_reset_2s: f64,
    /// Ambient temperature in °C. Cooling DRAM slows decay dramatically
    /// (the FROST household-freezer attack); the decay time constant
    /// roughly doubles per 10 °C of cooling below room temperature.
    pub temperature_c: f64,
}

impl Default for RemanenceModel {
    fn default() -> Self {
        RemanenceModel {
            warm_reboot: 0.964,
            reflash_tap: 0.975,
            hard_reset_2s: 0.001,
            temperature_c: 20.0,
        }
    }
}

impl RemanenceModel {
    /// Cell survival probability for a given power event.
    ///
    /// For hard resets the survival follows exponential decay in the
    /// power-off duration, with a time constant calibrated so that 2
    /// seconds at room temperature leaves `hard_reset_2s` of cells, and
    /// scaled by temperature (colder → slower decay).
    #[must_use]
    pub fn survival(&self, event: PowerEvent) -> f64 {
        match event {
            PowerEvent::WarmReboot => self.warm_reboot,
            PowerEvent::ReflashTap => self.reflash_tap,
            PowerEvent::HardReset { seconds } => {
                // decay: s(t) = exp(-t / tau); tau chosen so s(2s) at
                // room temperature equals hard_reset_2s.
                let tau_room = -2.0 / self.hard_reset_2s.ln();
                let cooling = (20.0 - self.temperature_c).max(0.0);
                let tau = tau_room * 2f64.powf(cooling / 10.0);
                (-seconds / tau).exp().clamp(0.0, 1.0)
            }
        }
    }
}

/// Sparse, frame-granular DRAM.
#[derive(Debug, Clone)]
pub struct Dram {
    size: u64,
    frames: BTreeMap<u64, Box<[u8]>>,
    remanence: RemanenceModel,
    rng: DetRng,
    reads: u64,
    writes: u64,
}

impl Dram {
    /// Create `size` bytes of DRAM (must be page-aligned) with the given
    /// remanence model and deterministic decay seed.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a multiple of the page size.
    #[must_use]
    pub fn new(size: u64, remanence: RemanenceModel, seed: u64) -> Self {
        assert!(
            size.is_multiple_of(PAGE_SIZE),
            "DRAM size must be page aligned"
        );
        Dram {
            size,
            frames: BTreeMap::new(),
            remanence,
            rng: DetRng::new(seed),
            reads: 0,
            writes: 0,
        }
    }

    /// Total DRAM size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// True if `addr..addr+len` lies within DRAM.
    #[must_use]
    pub fn contains(&self, addr: u64, len: usize) -> bool {
        addr >= DRAM_BASE && addr + len as u64 <= DRAM_BASE + self.size
    }

    fn frame_index(addr: u64) -> u64 {
        (addr - DRAM_BASE) / PAGE_SIZE
    }

    /// Read raw DRAM contents. Unwritten frames read as zero.
    ///
    /// This is the *physical* access used by the bus/cache and by DMA —
    /// higher layers never call it directly.
    ///
    /// # Panics
    ///
    /// Panics if the span falls outside DRAM; the caller (the SoC router)
    /// validates addresses first.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) {
        assert!(self.contains(addr, buf.len()), "DRAM read out of range");
        self.reads += 1;
        let mut done = 0usize;
        while done < buf.len() {
            let cur = addr + done as u64;
            let frame = Self::frame_index(cur);
            let off = ((cur - DRAM_BASE) % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize - off).min(buf.len() - done)).max(1);
            match self.frames.get(&frame) {
                Some(data) => buf[done..done + n].copy_from_slice(&data[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Write raw DRAM contents, allocating frames as needed.
    ///
    /// # Panics
    ///
    /// Panics if the span falls outside DRAM.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        assert!(self.contains(addr, data.len()), "DRAM write out of range");
        self.writes += 1;
        let mut done = 0usize;
        while done < data.len() {
            let cur = addr + done as u64;
            let frame = Self::frame_index(cur);
            let off = ((cur - DRAM_BASE) % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize - off).min(data.len() - done)).max(1);
            let slot = self
                .frames
                .entry(frame)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            slot[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
    }

    /// Number of read transactions served.
    #[must_use]
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Number of write transactions served.
    #[must_use]
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Apply a power event: every written 8-byte cell survives with the
    /// model's probability, otherwise it is replaced with random decay
    /// garbage.
    ///
    /// Determinism: frames are visited in ascending address order (the
    /// `BTreeMap` iteration order), and every cell of every populated
    /// frame draws from the seeded RNG exactly once, so two DRAMs with
    /// the same seed, same frame population, and same event sequence
    /// decay byte-identically. A certain-survival event (probability
    /// `>= 1.0`) is a no-op that leaves the RNG stream untouched.
    pub fn apply_power_event(&mut self, event: PowerEvent) {
        let survival = self.remanence.survival(event);
        if survival >= 1.0 {
            return;
        }
        for data in self.frames.values_mut() {
            for cell in data.chunks_mut(8) {
                if self.rng.next_f64() >= survival {
                    self.rng.fill(cell);
                }
            }
        }
    }

    /// Iterate over all populated frames as `(base_addr, bytes)`, in
    /// ascending address order (deterministic — never hash order).
    pub fn iter_frames(&self) -> impl Iterator<Item = (u64, &[u8])> + '_ {
        self.frames
            .iter()
            .map(|(frame, data)| (DRAM_BASE + frame * PAGE_SIZE, data.as_ref()))
    }

    /// Count non-overlapping 8-byte-aligned occurrences of `pattern` in
    /// all populated frames — the paper's remanence measurement (grep
    /// for the fill pattern and count).
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is not exactly 8 bytes.
    #[must_use]
    pub fn count_pattern(&self, pattern: &[u8; 8]) -> u64 {
        self.frames
            .values()
            .flat_map(|data| data.chunks_exact(8))
            .filter(|cell| cell == pattern)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(16 * 1024 * 1024, RemanenceModel::default(), 42)
    }

    #[test]
    fn read_of_unwritten_memory_is_zero() {
        let mut d = dram();
        let mut buf = [0xAAu8; 64];
        d.read(DRAM_BASE + 12345, &mut buf);
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn write_read_roundtrip_across_frames() {
        let mut d = dram();
        let data: Vec<u8> = (0..8192).map(|i| (i % 251) as u8).collect();
        // Deliberately unaligned, spanning three frames.
        let addr = DRAM_BASE + PAGE_SIZE - 100;
        d.write(addr, &data);
        let mut back = vec![0u8; data.len()];
        d.read(addr, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_outside_dram_panics() {
        let mut d = dram();
        let mut buf = [0u8; 4];
        d.read(DRAM_BASE + d.size(), &mut buf);
    }

    #[test]
    fn warm_reboot_keeps_most_cells() {
        let mut d = dram();
        let pattern = *b"SENTRYOK";
        let cells = 100_000u64;
        for i in 0..cells {
            d.write(DRAM_BASE + i * 8, &pattern);
        }
        d.apply_power_event(PowerEvent::WarmReboot);
        let survived = d.count_pattern(&pattern) as f64 / cells as f64;
        assert!((survived - 0.964).abs() < 0.01, "survival {survived}");
    }

    #[test]
    fn two_second_reset_destroys_nearly_everything() {
        let mut d = dram();
        let pattern = *b"SENTRYOK";
        let cells = 100_000u64;
        for i in 0..cells {
            d.write(DRAM_BASE + i * 8, &pattern);
        }
        d.apply_power_event(PowerEvent::HardReset { seconds: 2.0 });
        let survived = d.count_pattern(&pattern) as f64 / cells as f64;
        assert!(survived < 0.005, "survival {survived}");
    }

    #[test]
    fn freezing_slows_decay() {
        let warm = RemanenceModel::default();
        let frozen = RemanenceModel {
            temperature_c: -15.0,
            ..RemanenceModel::default()
        };
        let event = PowerEvent::HardReset { seconds: 2.0 };
        assert!(frozen.survival(event) > 100.0 * warm.survival(event));
    }

    #[test]
    fn survival_decays_monotonically_with_time() {
        let m = RemanenceModel::default();
        let mut last = 1.0;
        for t in [0.1, 0.5, 1.0, 2.0, 5.0, 30.0] {
            let s = m.survival(PowerEvent::HardReset { seconds: t });
            assert!(s < last);
            last = s;
        }
    }

    #[test]
    fn iter_frames_yields_ascending_addresses() {
        let mut d = dram();
        // Populate out of address order.
        for frame in [9u64, 1, 5, 0, 3] {
            d.write(DRAM_BASE + frame * PAGE_SIZE, b"frame");
        }
        let addrs: Vec<u64> = d.iter_frames().map(|(a, _)| a).collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert_eq!(addrs, sorted, "iteration must be address-ordered");
        assert_eq!(addrs.len(), 5);
    }

    #[test]
    fn same_seed_runs_produce_byte_identical_images() {
        // The fault-matrix repro contract: a (seed, schedule) pair fully
        // determines the post-event DRAM image, byte for byte — not just
        // the surviving pattern count.
        let run = || {
            let mut d = Dram::new(1024 * 1024, RemanenceModel::default(), 99);
            for i in 0..2000u64 {
                d.write(DRAM_BASE + i * 8, b"SENTRYOK");
            }
            d.apply_power_event(PowerEvent::ReflashTap);
            d.apply_power_event(PowerEvent::HardReset { seconds: 0.5 });
            d.iter_frames()
                .map(|(addr, bytes)| (addr, bytes.to_vec()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn decay_is_deterministic_for_a_seed() {
        let run = || {
            let mut d = Dram::new(1024 * 1024, RemanenceModel::default(), 7);
            for i in 0..1000u64 {
                d.write(DRAM_BASE + i * 8, b"SENTRYOK");
            }
            d.apply_power_event(PowerEvent::ReflashTap);
            d.count_pattern(b"SENTRYOK")
        };
        assert_eq!(run(), run());
    }
}
