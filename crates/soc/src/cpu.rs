//! The CPU register file, interrupt state, and context-switch spill
//! behaviour.
//!
//! AES On SoC's register hygiene (§6.2) exists because of two leak paths
//! this module models:
//!
//! * **Context switches**: if an interrupt preempts sensitive
//!   computation, the kernel spills all general-purpose registers to the
//!   process's kernel stack — which lives in DRAM. Sentry brackets
//!   sensitive compute sections with `onsoc_disable_irq()` /
//!   `onsoc_enable_irq()`; the latter also **zeroes the registers**
//!   before interrupts are re-enabled.
//! * **Procedure calls**: the ARM AAPCS passes the first four arguments
//!   in registers and the rest on the (DRAM) stack; [`Cpu::pass_args`]
//!   models the calling convention so integrations can assert they never
//!   spill.

/// Number of general-purpose registers spilled on a context switch
/// (r0–r12, sp, lr, pc).
pub const NUM_REGS: usize = 16;

/// Number of arguments the ARM AAPCS passes in registers (r0–r3); the
/// rest go to the stack.
pub const REG_ARGS: usize = 4;

/// The simulated CPU core state.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; NUM_REGS],
    irqs_enabled: bool,
    preempt_pending: bool,
    /// Cumulative simulated time spent with IRQs disabled, in
    /// nanoseconds. The paper reports ~160 µs per AES On SoC section on
    /// the Tegra 3.
    pub irq_disabled_ns: u64,
    /// Number of IRQ-disabled critical sections entered.
    pub critical_sections: u64,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// A CPU with zeroed registers and interrupts enabled.
    #[must_use]
    pub fn new() -> Self {
        Cpu {
            regs: [0u32; NUM_REGS],
            irqs_enabled: true,
            preempt_pending: false,
            irq_disabled_ns: 0,
            critical_sections: 0,
        }
    }

    /// Whether interrupts are currently enabled.
    #[must_use]
    pub fn irqs_enabled(&self) -> bool {
        self.irqs_enabled
    }

    /// Read a register.
    ///
    /// # Panics
    ///
    /// Panics if `r >= NUM_REGS`.
    #[must_use]
    pub fn reg(&self, r: usize) -> u32 {
        self.regs[r]
    }

    /// Write a register.
    ///
    /// # Panics
    ///
    /// Panics if `r >= NUM_REGS`.
    pub fn set_reg(&mut self, r: usize, v: u32) {
        self.regs[r] = v;
    }

    /// Mark that the scheduler wants to preempt this core; the next
    /// interruptible moment will trigger a context-switch spill.
    pub fn request_preemption(&mut self) {
        self.preempt_pending = true;
    }

    /// Whether a preemption is pending delivery.
    #[must_use]
    pub fn preemption_pending(&self) -> bool {
        self.preempt_pending
    }

    /// Deliver a pending preemption if interrupts allow it, returning the
    /// register snapshot the kernel would spill to the DRAM stack.
    ///
    /// The *caller* (the kernel model) writes this snapshot to the
    /// process's kernel stack in DRAM — making it visible to memory
    /// attacks — which is precisely the leak `onsoc_disable_irq`
    /// prevents.
    pub fn take_preemption(&mut self) -> Option<[u32; NUM_REGS]> {
        if self.irqs_enabled && self.preempt_pending {
            self.preempt_pending = false;
            Some(self.regs)
        } else {
            None
        }
    }

    /// `onsoc_disable_irq()` / `onsoc_enable_irq()`: run `f` with
    /// interrupts disabled, then zero all general-purpose registers and
    /// re-enable interrupts (§6.2, "Handling context switches").
    ///
    /// `duration_ns` is how long the critical section took in simulated
    /// time; it is accumulated into [`Cpu::irq_disabled_ns`] so
    /// experiments can report interrupt-latency impact (the paper
    /// measured ~160 µs on average).
    pub fn with_irqs_disabled<T>(&mut self, duration_ns: u64, f: impl FnOnce(&mut Cpu) -> T) -> T {
        let was_enabled = self.irqs_enabled;
        self.irqs_enabled = false;
        self.critical_sections += 1;
        let out = f(self);
        // onsoc_enable_irq: zero the registers, then re-enable.
        self.regs = [0u32; NUM_REGS];
        self.irqs_enabled = was_enabled;
        self.irq_disabled_ns += duration_ns;
        out
    }

    /// Enter an IRQ-disabled critical section without a closure — for
    /// callers that must interleave CPU state with other mutable borrows
    /// (e.g. AES On SoC running through the memory hierarchy). Pair with
    /// [`Cpu::end_critical`]. Returns whether IRQs were enabled before.
    pub fn begin_critical(&mut self) -> bool {
        let was = self.irqs_enabled;
        self.irqs_enabled = false;
        self.critical_sections += 1;
        was
    }

    /// Leave a critical section begun with [`Cpu::begin_critical`]:
    /// zeroes all registers (the `onsoc_enable_irq` duty), restores the
    /// saved IRQ state, and accounts the section's duration.
    pub fn end_critical(&mut self, was_enabled: bool, duration_ns: u64) {
        self.regs = [0u32; NUM_REGS];
        self.irqs_enabled = was_enabled;
        self.irq_disabled_ns += duration_ns;
    }

    /// Model an AAPCS procedure call with `args`. The first four go to
    /// registers; the rest would be written to the DRAM stack, which the
    /// function reports by returning the spilled slice. AES On SoC's
    /// implementation discipline is that *no call handling sensitive
    /// state takes more than four arguments* (§6.2) — integrations assert
    /// the returned spill is empty.
    pub fn pass_args<'a>(&mut self, args: &'a [u32]) -> &'a [u32] {
        for (i, &a) in args.iter().take(REG_ARGS).enumerate() {
            self.regs[i] = a;
        }
        if args.len() > REG_ARGS {
            &args[REG_ARGS..]
        } else {
            &[]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preemption_delivers_only_with_irqs_enabled() {
        let mut cpu = Cpu::new();
        cpu.set_reg(0, 0xDEAD_BEEF);
        cpu.request_preemption();
        let spill = cpu.take_preemption().expect("irqs enabled, must deliver");
        assert_eq!(spill[0], 0xDEAD_BEEF);
        assert!(!cpu.preemption_pending());
    }

    #[test]
    fn irq_disabled_section_blocks_preemption_and_zeroes_registers() {
        let mut cpu = Cpu::new();
        cpu.request_preemption();
        let leaked = cpu.with_irqs_disabled(160_000, |cpu| {
            cpu.set_reg(3, 0x5EC1_2E75);
            cpu.take_preemption()
        });
        assert!(leaked.is_none(), "no spill while IRQs are off");
        // Registers were zeroed on exit.
        assert_eq!(cpu.reg(3), 0);
        assert_eq!(cpu.irq_disabled_ns, 160_000);
        assert_eq!(cpu.critical_sections, 1);
        // The pending preemption now delivers, but registers hold nothing.
        let spill = cpu.take_preemption().unwrap();
        assert_eq!(spill, [0u32; NUM_REGS]);
    }

    #[test]
    fn aapcs_spills_fifth_argument_onward() {
        let mut cpu = Cpu::new();
        let spilled = cpu.pass_args(&[1, 2, 3, 4]);
        assert!(spilled.is_empty());
        assert_eq!(cpu.reg(0), 1);
        assert_eq!(cpu.reg(3), 4);
        let spilled = cpu.pass_args(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(spilled, &[5, 6]);
    }

    #[test]
    fn nested_sections_restore_outer_state() {
        let mut cpu = Cpu::new();
        cpu.with_irqs_disabled(10, |cpu| {
            assert!(!cpu.irqs_enabled());
            cpu.with_irqs_disabled(5, |cpu| {
                assert!(!cpu.irqs_enabled());
            });
            // Inner exit must not re-enable IRQs while the outer section
            // is still active.
            assert!(!cpu.irqs_enabled());
        });
        assert!(cpu.irqs_enabled());
        assert_eq!(cpu.irq_disabled_ns, 15);
    }
}
