//! A PL310-style shared L2 cache with lockdown by way.
//!
//! Cortex-A9 platforms manage their shared L2 through ARM's PL310 cache
//! controller, which supports locking portions of the cache so they are
//! never evicted — a feature aimed at real-time predictability that
//! Sentry repurposes for security (§4.2). The model implements:
//!
//! * 1 MiB, 8 ways × 128 KiB, 32-byte lines, physically indexed;
//! * an *allocation mask* ("enable way" commands): new lines allocate
//!   only into enabled ways, while valid lines in disabled ways still
//!   serve hits — exactly the behaviour the paper's locking sequence
//!   relies on;
//! * the validated write-back guarantee: locked (disabled) ways are never
//!   chosen for eviction, so their dirty lines never reach DRAM;
//! * a *flush way-mask* honoured by maintenance flushes — the OS-level
//!   change of §4.5 (the Linux L2 flush paths grew from 428 to 676 lines
//!   to pass this mask);
//! * the raw full flush, which — as the paper discovered experimentally —
//!   cleans, invalidates, *and unlocks* every way, spilling locked
//!   contents to DRAM; Sentry must never invoke it while ways are locked.
//!
//! All DRAM-side traffic (line fills, write-backs) is routed through the
//! [`crate::bus::Bus`], so a bus monitor sees exactly what a probe on the
//! memory bus would see.

use crate::bus::{Bus, BusMaster, BusOp};
use crate::clock::{CostModel, SimClock};
use crate::dram::Dram;

/// Cache line size in bytes.
pub const LINE_SIZE: usize = 32;
/// Number of ways.
pub const NUM_WAYS: usize = 8;
/// Bytes per way (128 KiB).
pub const WAY_BYTES: usize = 128 * 1024;
/// Number of sets (`WAY_BYTES / LINE_SIZE`).
pub const NUM_SETS: usize = WAY_BYTES / LINE_SIZE;
/// Total cache capacity (1 MiB).
pub const CACHE_BYTES: usize = NUM_WAYS * WAY_BYTES;
/// Allocation/flush mask covering all ways.
pub const ALL_WAYS: u8 = 0xFF;

/// The DRAM-side path a cache transaction uses: memory, bus, clock, and
/// the cost model. Bundled so cache/DMA methods stay readable.
pub struct MemPath<'a> {
    /// The DRAM behind the cache.
    pub dram: &'a mut Dram,
    /// The external memory bus (observable).
    pub bus: &'a mut Bus,
    /// The simulation clock.
    pub clock: &'a mut SimClock,
    /// Calibrated operation costs.
    pub costs: &'a CostModel,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    data: [u8; LINE_SIZE],
}

impl Default for Line {
    fn default() -> Self {
        Line {
            valid: false,
            dirty: false,
            tag: 0,
            data: [0u8; LINE_SIZE],
        }
    }
}

/// Running hit/miss/traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line accesses served from the cache.
    pub hits: u64,
    /// Line accesses that required a DRAM fill.
    pub misses: u64,
    /// Dirty lines written back to DRAM on eviction or flush.
    pub writebacks: u64,
    /// Accesses performed uncached (cache off or no way enabled).
    pub uncached: u64,
}

/// The PL310 L2 cache controller and its data arrays.
pub struct Pl310 {
    lines: Vec<Line>,
    alloc_mask: u8,
    flush_mask: u8,
    victims: Vec<u8>,
    enabled: bool,
    stats: CacheStats,
}

impl std::fmt::Debug for Pl310 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pl310")
            .field("enabled", &self.enabled)
            .field("alloc_mask", &format_args!("{:#010b}", self.alloc_mask))
            .field("flush_mask", &format_args!("{:#010b}", self.flush_mask))
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Pl310 {
    fn default() -> Self {
        Self::new()
    }
}

impl Pl310 {
    /// A powered-on, empty cache with all ways enabled for allocation
    /// and flushing.
    #[must_use]
    pub fn new() -> Self {
        Pl310 {
            lines: vec![Line::default(); NUM_SETS * NUM_WAYS],
            alloc_mask: ALL_WAYS,
            flush_mask: ALL_WAYS,
            victims: vec![0u8; NUM_SETS],
            enabled: true,
            stats: CacheStats::default(),
        }
    }

    /// Whether the cache is enabled at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable the whole cache.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// The current allocation mask (bit `w` set = way `w` may receive new
    /// allocations). Programming this register requires the TrustZone
    /// secure world; the [`crate::soc::Soc`] façade enforces that.
    #[must_use]
    pub fn alloc_mask(&self) -> u8 {
        self.alloc_mask
    }

    /// Program the allocation mask (the PL310 "enable way" command).
    pub fn set_alloc_mask(&mut self, mask: u8) {
        self.alloc_mask = mask;
    }

    /// The flush way-mask honoured by [`Pl310::maintenance_flush`].
    #[must_use]
    pub fn flush_mask(&self) -> u8 {
        self.flush_mask
    }

    /// Program the flush way-mask (the OS-side lock bookkeeping of §4.5).
    pub fn set_flush_mask(&mut self, mask: u8) {
        self.flush_mask = mask;
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics to zero.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_and_tag(addr: u64) -> (usize, u64) {
        let line_addr = addr / LINE_SIZE as u64;
        ((line_addr as usize) % NUM_SETS, line_addr / NUM_SETS as u64)
    }

    fn line_base(set: usize, tag: u64) -> u64 {
        (tag * NUM_SETS as u64 + set as u64) * LINE_SIZE as u64
    }

    fn idx(set: usize, way: usize) -> usize {
        set * NUM_WAYS + way
    }

    /// Which way (if any) currently holds the line containing `addr`.
    #[must_use]
    pub fn lookup_way(&self, addr: u64) -> Option<usize> {
        let (set, tag) = Self::set_and_tag(addr);
        (0..NUM_WAYS).find(|&w| {
            let line = &self.lines[Self::idx(set, w)];
            line.valid && line.tag == tag
        })
    }

    /// Number of valid lines currently resident in `way`.
    ///
    /// # Panics
    ///
    /// Panics if `way >= NUM_WAYS`.
    #[must_use]
    pub fn valid_lines_in_way(&self, way: usize) -> usize {
        assert!(way < NUM_WAYS);
        (0..NUM_SETS)
            .filter(|&s| self.lines[Self::idx(s, way)].valid)
            .count()
    }

    /// CPU read of `buf.len()` bytes at `addr` through the cache.
    pub fn read(&mut self, addr: u64, buf: &mut [u8], path: &mut MemPath<'_>) {
        self.access(addr, AccessBuf::Read(buf), path);
    }

    /// CPU write of `data` at `addr` through the cache (write-allocate,
    /// write-back).
    pub fn write(&mut self, addr: u64, data: &[u8], path: &mut MemPath<'_>) {
        self.access(addr, AccessBuf::Write(data), path);
    }

    fn access(&mut self, addr: u64, mut buf: AccessBuf<'_, '_>, path: &mut MemPath<'_>) {
        if !self.enabled {
            self.uncached_access(addr, &mut buf, path);
            return;
        }
        let len = buf.len();
        let mut done = 0usize;
        while done < len {
            let cur = addr + done as u64;
            let line_off = (cur % LINE_SIZE as u64) as usize;
            let n = (LINE_SIZE - line_off).min(len - done);
            self.access_line(cur, line_off, done, n, &mut buf, path);
            done += n;
        }
    }

    fn access_line(
        &mut self,
        addr: u64,
        line_off: usize,
        buf_off: usize,
        n: usize,
        buf: &mut AccessBuf<'_, '_>,
        path: &mut MemPath<'_>,
    ) {
        let (set, tag) = Self::set_and_tag(addr);
        let way = match self.lookup_way(addr) {
            Some(w) => {
                self.stats.hits += 1;
                path.clock.advance(path.costs.cache_hit_ns);
                w
            }
            None => {
                self.stats.misses += 1;
                match self.allocate(set, tag, path) {
                    Some(w) => w,
                    None => {
                        // No way is allocatable: perform the access
                        // uncached, directly against DRAM.
                        self.stats.uncached += 1;
                        let base = addr - line_off as u64;
                        let _ = base;
                        self.uncached_span(addr, buf_off, n, buf, path);
                        return;
                    }
                }
            }
        };
        let line = &mut self.lines[Self::idx(set, way)];
        match buf {
            AccessBuf::Read(out) => {
                out[buf_off..buf_off + n].copy_from_slice(&line.data[line_off..line_off + n]);
            }
            AccessBuf::Write(input) => {
                line.data[line_off..line_off + n].copy_from_slice(&input[buf_off..buf_off + n]);
                line.dirty = true;
            }
        }
    }

    /// Pick a victim way in `set` (enabled ways only), evict it, and fill
    /// the line from DRAM. Returns `None` if no way is enabled.
    fn allocate(&mut self, set: usize, tag: u64, path: &mut MemPath<'_>) -> Option<usize> {
        if self.alloc_mask == 0 {
            return None;
        }
        // Prefer an invalid enabled way.
        let enabled = (0..NUM_WAYS).filter(|&w| self.alloc_mask & (1 << w) != 0);
        let mut victim = None;
        for w in enabled {
            if !self.lines[Self::idx(set, w)].valid {
                victim = Some(w);
                break;
            }
        }
        let way = victim.unwrap_or_else(|| {
            // Round-robin over enabled ways.
            let mut v = self.victims[set] as usize;
            loop {
                v = (v + 1) % NUM_WAYS;
                if self.alloc_mask & (1 << v) != 0 {
                    break;
                }
            }
            self.victims[set] = v as u8;
            v
        });

        self.evict_line(set, way, path);

        // Fill from DRAM over the bus.
        let base = Self::line_base(set, tag);
        let mut data = [0u8; LINE_SIZE];
        if path.dram.contains(base, LINE_SIZE) {
            path.dram.read(base, &mut data);
        }
        path.clock.advance(path.costs.dram_line_ns);
        path.bus.transact(
            path.clock.now_ns(),
            BusOp::Read,
            BusMaster::Cache,
            base,
            &data,
        );

        let line = &mut self.lines[Self::idx(set, way)];
        line.valid = true;
        line.dirty = false;
        line.tag = tag;
        line.data = data;
        Some(way)
    }

    fn evict_line(&mut self, set: usize, way: usize, path: &mut MemPath<'_>) {
        let line = &mut self.lines[Self::idx(set, way)];
        if line.valid && line.dirty {
            let base = Self::line_base(set, line.tag);
            if path.dram.contains(base, LINE_SIZE) {
                path.dram.write(base, &line.data);
            }
            path.clock.advance(path.costs.dram_line_ns);
            path.bus.transact(
                path.clock.now_ns(),
                BusOp::Write,
                BusMaster::Cache,
                base,
                &line.data,
            );
            self.stats.writebacks += 1;
        }
        let line = &mut self.lines[Self::idx(set, way)];
        line.valid = false;
        line.dirty = false;
    }

    fn uncached_access(&mut self, addr: u64, buf: &mut AccessBuf<'_, '_>, path: &mut MemPath<'_>) {
        let len = buf.len();
        self.stats.uncached += 1;
        self.uncached_span(addr, 0, len, buf, path);
    }

    fn uncached_span(
        &mut self,
        addr: u64,
        buf_off: usize,
        n: usize,
        buf: &mut AccessBuf<'_, '_>,
        path: &mut MemPath<'_>,
    ) {
        path.clock.advance(path.costs.dram_line_ns);
        match buf {
            AccessBuf::Read(out) => {
                path.dram.read(addr, &mut out[buf_off..buf_off + n]);
                let shown = out[buf_off..buf_off + n].to_vec();
                path.bus.transact(
                    path.clock.now_ns(),
                    BusOp::Read,
                    BusMaster::CpuUncached,
                    addr,
                    &shown,
                );
            }
            AccessBuf::Write(input) => {
                path.dram.write(addr, &input[buf_off..buf_off + n]);
                path.bus.transact(
                    path.clock.now_ns(),
                    BusOp::Write,
                    BusMaster::CpuUncached,
                    addr,
                    &input[buf_off..buf_off + n],
                );
            }
        }
    }

    /// Maintenance clean-and-invalidate of the ways selected by the flush
    /// way-mask. This is the *patched* Linux flush path: locked ways are
    /// excluded from the mask, so their contents stay resident.
    pub fn maintenance_flush(&mut self, path: &mut MemPath<'_>) {
        let mask = self.flush_mask;
        self.flush_ways(mask, path);
    }

    /// The raw hardware full flush: cleans and invalidates **all** ways
    /// and re-enables them for allocation — i.e., it unlocks every locked
    /// way, exactly the hazard the paper discovered in §4.2. Only the
    /// firmware/boot path and the "unpatched OS" experiments call this.
    pub fn flush_all_raw(&mut self, path: &mut MemPath<'_>) {
        self.flush_ways(ALL_WAYS, path);
        self.alloc_mask = ALL_WAYS;
    }

    fn flush_ways(&mut self, mask: u8, path: &mut MemPath<'_>) {
        for way in 0..NUM_WAYS {
            if mask & (1 << way) == 0 {
                continue;
            }
            path.clock.advance(path.costs.cache_flush_way_ns);
            for set in 0..NUM_SETS {
                self.evict_line(set, way, path);
            }
        }
    }

    /// Drop the line covering `addr` (if resident) **without**
    /// write-back. Models a DRAM-array disturbance behind the cache's
    /// back: the stale line is discarded so the next access refills from
    /// the (tampered) DRAM contents. Returns whether a line was dropped.
    pub fn invalidate_line(&mut self, addr: u64) -> bool {
        let (set, _) = Self::set_and_tag(addr);
        match self.lookup_way(addr) {
            Some(way) => {
                let line = &mut self.lines[Self::idx(set, way)];
                line.valid = false;
                line.dirty = false;
                true
            }
            None => false,
        }
    }

    /// Power-on reset: invalidate everything *without* write-back (the
    /// arrays come up in an undefined state and firmware initializes
    /// them), and reset masks. Matches the firmware behaviour that makes
    /// locked-cache contents unrecoverable by cold boot (§4.3).
    pub fn power_on_reset(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
        self.alloc_mask = ALL_WAYS;
        self.flush_mask = ALL_WAYS;
        self.victims.fill(0);
    }

    /// Dump the valid lines of a way as `(dram_addr, data)` pairs —
    /// used by tests and by "electron microscope"-class introspection
    /// that is explicitly out of the threat model.
    #[must_use]
    pub fn dump_way(&self, way: usize) -> Vec<(u64, [u8; LINE_SIZE])> {
        assert!(way < NUM_WAYS);
        (0..NUM_SETS)
            .filter_map(|set| {
                let line = &self.lines[Self::idx(set, way)];
                line.valid
                    .then(|| (Self::line_base(set, line.tag), line.data))
            })
            .collect()
    }
}

enum AccessBuf<'a, 'b> {
    Read(&'a mut [u8]),
    Write(&'b [u8]),
}

impl AccessBuf<'_, '_> {
    fn len(&self) -> usize {
        match self {
            AccessBuf::Read(b) => b.len(),
            AccessBuf::Write(b) => b.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DRAM_BASE;
    use crate::dram::RemanenceModel;

    fn fixture() -> (Pl310, Dram, Bus, SimClock, CostModel) {
        (
            Pl310::new(),
            Dram::new(16 * 1024 * 1024, RemanenceModel::default(), 1),
            Bus::new(),
            SimClock::new(),
            CostModel::tegra3(),
        )
    }

    macro_rules! path {
        ($dram:expr, $bus:expr, $clock:expr, $costs:expr) => {
            &mut MemPath {
                dram: &mut $dram,
                bus: &mut $bus,
                clock: &mut $clock,
                costs: &$costs,
            }
        };
    }

    #[test]
    fn cached_write_then_read_hits() {
        let (mut cache, mut dram, mut bus, mut clock, costs) = fixture();
        cache.write(DRAM_BASE, b"hello, cache", path!(dram, bus, clock, costs));
        let mut buf = [0u8; 12];
        cache.read(DRAM_BASE, &mut buf, path!(dram, bus, clock, costs));
        assert_eq!(&buf, b"hello, cache");
        assert!(cache.stats().hits >= 1);
    }

    #[test]
    fn dirty_data_not_in_dram_until_evicted() {
        let (mut cache, mut dram, mut bus, mut clock, costs) = fixture();
        cache.write(DRAM_BASE, b"secretpw", path!(dram, bus, clock, costs));
        // DRAM still has zeros: write-back cache.
        let mut raw = [0u8; 8];
        dram.read(DRAM_BASE, &mut raw);
        assert_eq!(raw, [0u8; 8]);
        // Flush pushes it out.
        cache.maintenance_flush(path!(dram, bus, clock, costs));
        dram.read(DRAM_BASE, &mut raw);
        assert_eq!(&raw, b"secretpw");
    }

    #[test]
    fn locked_way_lines_survive_eviction_pressure() {
        let (mut cache, mut dram, mut bus, mut clock, costs) = fixture();
        // Lock sequence from §4.5: flush, enable only way 0, warm it,
        // enable the last 7 ways.
        cache.maintenance_flush(path!(dram, bus, clock, costs));
        cache.set_alloc_mask(0b0000_0001);
        let locked_base = DRAM_BASE + 0x10_0000;
        cache.write(locked_base, &[0xFFu8; 64], path!(dram, bus, clock, costs));
        cache.set_alloc_mask(0b1111_1110);
        cache.set_flush_mask(0b1111_1110);

        assert_eq!(cache.lookup_way(locked_base), Some(0));

        // Thrash every set heavily through the other ways.
        for round in 0..16u64 {
            for set_step in 0..NUM_SETS as u64 {
                let addr = DRAM_BASE + (round * NUM_SETS as u64 + set_step) * LINE_SIZE as u64;
                cache.write(addr, &[round as u8], path!(dram, bus, clock, costs));
            }
        }
        // The locked line is still resident in way 0.
        assert_eq!(cache.lookup_way(locked_base), Some(0));
        // And its contents never reached DRAM.
        let mut raw = [0u8; 64];
        dram.read(locked_base, &mut raw);
        assert_eq!(raw, [0u8; 64]);
    }

    #[test]
    fn masked_flush_spares_locked_way_raw_flush_does_not() {
        let (mut cache, mut dram, mut bus, mut clock, costs) = fixture();
        cache.set_alloc_mask(0b0000_0001);
        let locked_base = DRAM_BASE + 0x20_0000;
        cache.write(locked_base, b"KEYMATRL", path!(dram, bus, clock, costs));
        cache.set_alloc_mask(0b1111_1110);
        cache.set_flush_mask(0b1111_1110);

        cache.maintenance_flush(path!(dram, bus, clock, costs));
        assert_eq!(
            cache.lookup_way(locked_base),
            Some(0),
            "masked flush must spare way 0"
        );

        // The raw full flush — the behaviour the paper validated on real
        // hardware — evicts and *unlocks* everything.
        cache.flush_all_raw(path!(dram, bus, clock, costs));
        assert_eq!(cache.lookup_way(locked_base), None);
        assert_eq!(cache.alloc_mask(), ALL_WAYS);
        let mut raw = [0u8; 8];
        dram.read(locked_base, &mut raw);
        assert_eq!(&raw, b"KEYMATRL", "raw flush spills locked data to DRAM");
    }

    #[test]
    fn hits_serve_from_disabled_ways() {
        let (mut cache, mut dram, mut bus, mut clock, costs) = fixture();
        cache.set_alloc_mask(0b0000_0001);
        let addr = DRAM_BASE + 0x30_0000;
        cache.write(addr, b"pinned!!", path!(dram, bus, clock, costs));
        cache.set_alloc_mask(0b1111_1110);
        // Reads and writes still hit way 0.
        let mut buf = [0u8; 8];
        cache.read(addr, &mut buf, path!(dram, bus, clock, costs));
        assert_eq!(&buf, b"pinned!!");
        cache.write(addr, b"pinned!2", path!(dram, bus, clock, costs));
        assert_eq!(cache.lookup_way(addr), Some(0));
    }

    #[test]
    fn no_enabled_ways_means_uncached() {
        let (mut cache, mut dram, mut bus, mut clock, costs) = fixture();
        cache.set_alloc_mask(0);
        cache.write(DRAM_BASE, b"uncached", path!(dram, bus, clock, costs));
        let mut raw = [0u8; 8];
        dram.read(DRAM_BASE, &mut raw);
        assert_eq!(&raw, b"uncached");
        assert!(cache.stats().uncached > 0);
        assert!(bus.writes() > 0);
    }

    #[test]
    fn power_on_reset_drops_contents_without_writeback() {
        let (mut cache, mut dram, mut bus, mut clock, costs) = fixture();
        cache.write(DRAM_BASE + 64, b"volatile", path!(dram, bus, clock, costs));
        cache.power_on_reset();
        assert_eq!(cache.lookup_way(DRAM_BASE + 64), None);
        let mut raw = [0u8; 8];
        dram.read(DRAM_BASE + 64, &mut raw);
        assert_eq!(raw, [0u8; 8], "power-on reset must not write back");
    }

    #[test]
    fn eviction_writes_cross_the_bus() {
        let (mut cache, mut dram, mut bus, mut clock, costs) = fixture();
        // Write more distinct lines mapping to the same set than there
        // are ways, forcing evictions.
        let set_stride = (NUM_SETS * LINE_SIZE) as u64;
        for i in 0..(NUM_WAYS as u64 + 2) {
            cache.write(
                DRAM_BASE + i * set_stride,
                &[i as u8; LINE_SIZE],
                path!(dram, bus, clock, costs),
            );
        }
        assert!(cache.stats().writebacks >= 2);
        assert!(bus.writes() >= 2);
    }

    #[test]
    fn unaligned_access_spanning_lines() {
        let (mut cache, mut dram, mut bus, mut clock, costs) = fixture();
        let addr = DRAM_BASE + LINE_SIZE as u64 - 5;
        let data: Vec<u8> = (0..80).collect();
        cache.write(addr, &data, path!(dram, bus, clock, costs));
        let mut buf = vec![0u8; 80];
        cache.read(addr, &mut buf, path!(dram, bus, clock, costs));
        assert_eq!(buf, data);
    }

    #[test]
    fn geometry_constants() {
        assert_eq!(CACHE_BYTES, 1024 * 1024);
        assert_eq!(NUM_SETS, 4096);
    }
}
