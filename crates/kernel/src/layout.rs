//! Physical-memory layout used by the kernel model.
//!
//! DRAM is carved into three regions:
//!
//! * a kernel-reserved region (kernel stacks, crypto-API key storage —
//!   the DRAM residency of generic AES key material is exactly what the
//!   cold-boot attacks recover);
//! * a window reserved for locked-L2 backing addresses: pages whose
//!   physical addresses map into locked cache ways. These addresses are
//!   never written back, so the DRAM behind them stays stale; reserving
//!   the window keeps the frame allocator from handing the same
//!   addresses to ordinary memory;
//! * the user frame pool everything else allocates from.

use sentry_soc::addr::{DRAM_BASE, PAGE_SIZE};

/// Size of the kernel-reserved low region.
pub const KERNEL_RESERVED: u64 = 16 << 20;

/// Base of the kernel-reserved region.
pub const KERNEL_BASE: u64 = DRAM_BASE;

/// Base of per-process kernel stacks (16 KiB each, within the kernel
/// region).
pub const KERNEL_STACKS_BASE: u64 = KERNEL_BASE + (1 << 20);

/// Bytes of kernel stack per process.
pub const KERNEL_STACK_SIZE: u64 = 16 * 1024;

/// Base of the crypto-accelerator DMA bounce window. The engine is a
/// bus master: descriptors point it at DRAM, so everything it touches
/// is visible to a bus monitor. Staging accelerator I/O through this
/// fixed window keeps that traffic honest — and means a power cut
/// mid-transfer leaves only what the window held (ciphertext; plaintext
/// results are written back only at operation completion).
pub const ACCEL_DMA_BASE: u64 = KERNEL_BASE + (4 << 20);

/// Size of the accelerator DMA bounce window.
pub const ACCEL_DMA_SIZE: u64 = 1 << 20;

/// DMA controller id the crypto accelerator masters the bus as.
/// (Controller 0 is the id the DMA-attack experiments use for rogue
/// peripherals; giving the accelerator its own id keeps traces legible.)
pub const ACCEL_DMA_CONTROLLER: u8 = 1;

/// Where the generic (unsafe) AES engine keeps its key schedule — kernel
/// heap, in DRAM.
pub const CRYPTO_KEYS_BASE: u64 = KERNEL_BASE + (8 << 20);

/// Base of the locked-L2 window region.
pub const LOCKED_WINDOW_BASE: u64 = DRAM_BASE + KERNEL_RESERVED;

/// Size of the locked-L2 window region (enough for many 128 KiB way
/// windows).
pub const LOCKED_WINDOW_SIZE: u64 = 16 << 20;

/// Base of the user frame pool.
pub const USER_POOL_BASE: u64 = LOCKED_WINDOW_BASE + LOCKED_WINDOW_SIZE;

/// Kernel stack (base) address for a process id.
#[must_use]
pub fn kernel_stack_for(pid: u32) -> u64 {
    KERNEL_STACKS_BASE + u64::from(pid) * KERNEL_STACK_SIZE
}

/// Number of user-pool frames available in a DRAM of `dram_size` bytes.
#[must_use]
pub fn user_pool_frames(dram_size: u64) -> u64 {
    (DRAM_BASE + dram_size).saturating_sub(USER_POOL_BASE) / PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the layout *is* constant;
                                              // the test documents and guards the invariants if constants change.
    fn regions_are_ordered_and_disjoint() {
        assert!(KERNEL_BASE < LOCKED_WINDOW_BASE);
        assert_eq!(LOCKED_WINDOW_BASE, KERNEL_BASE + KERNEL_RESERVED);
        assert_eq!(USER_POOL_BASE, LOCKED_WINDOW_BASE + LOCKED_WINDOW_SIZE);
        assert!(CRYPTO_KEYS_BASE < LOCKED_WINDOW_BASE);
        assert!(KERNEL_STACKS_BASE + 64 * KERNEL_STACK_SIZE < CRYPTO_KEYS_BASE);
        // The accel DMA bounce window sits between the kernel stacks and
        // the crypto-key heap, inside the kernel-reserved region.
        assert!(KERNEL_STACKS_BASE + 64 * KERNEL_STACK_SIZE <= ACCEL_DMA_BASE);
        assert!(ACCEL_DMA_BASE + ACCEL_DMA_SIZE <= CRYPTO_KEYS_BASE);
    }

    #[test]
    fn pool_frames_for_small_dram() {
        // 64 MiB DRAM leaves 32 MiB of user pool = 8192 frames.
        assert_eq!(user_pool_frames(64 << 20), 8192);
        // Too-small DRAM leaves nothing (saturating).
        assert_eq!(user_pool_frames(16 << 20), 0);
    }

    #[test]
    fn kernel_stacks_do_not_collide() {
        assert_eq!(kernel_stack_for(0) + KERNEL_STACK_SIZE, kernel_stack_for(1));
    }
}
