//! Process control blocks.

use crate::pagetable::PageTable;

/// Process identifier.
pub type Pid = u32;

/// Per-process paging statistics, fed into the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcStats {
    /// Page faults taken.
    pub faults: u64,
    /// Bytes decrypted on behalf of this process.
    pub bytes_decrypted: u64,
    /// Bytes encrypted on behalf of this process.
    pub bytes_encrypted: u64,
}

/// A process control block.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Human-readable name (e.g. "com.twitter.android").
    pub name: String,
    /// Marked sensitive by the user in the settings menu (§7,
    /// "Selective Encryption").
    pub sensitive: bool,
    /// Cleared while the process is parked in the unschedulable queue
    /// (encrypted foreground apps on a locked Nexus 4, §7).
    pub schedulable: bool,
    /// The process's page table.
    pub page_table: PageTable,
    /// Physical base address of the kernel stack (in DRAM — the context
    /// switch spill target).
    pub kernel_stack: u64,
    /// Paging statistics.
    pub stats: ProcStats,
}

impl Process {
    /// Create a process with an empty address space.
    #[must_use]
    pub fn new(pid: Pid, name: impl Into<String>, kernel_stack: u64) -> Self {
        Process {
            pid,
            name: name.into(),
            sensitive: false,
            schedulable: true,
            page_table: PageTable::new(),
            kernel_stack,
            stats: ProcStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_defaults() {
        let p = Process::new(7, "twitter", 0x8000_4000);
        assert_eq!(p.pid, 7);
        assert!(!p.sensitive);
        assert!(p.schedulable);
        assert!(p.page_table.is_empty());
        assert_eq!(p.stats, ProcStats::default());
    }
}
