//! A minimal operating-system model over the simulated SoC.
//!
//! Sentry is implemented as OS changes (the paper modifies the Linux page
//! fault handler, the L2 flush paths, the Crypto API, and dm-crypt), so
//! the reproduction needs an OS to change. This crate provides the
//! smallest kernel that exposes the right seams:
//!
//! * [`process`]/[`pagetable`] — processes with per-page PTEs carrying
//!   the ARM `young` bit, an `encrypted` bit, and a backing location
//!   (DRAM frame, on-SoC page);
//! * [`fault`] — accesses to non-young/non-present pages surface as
//!   [`fault::PageFault`]s that a pager (Sentry's encrypted-DRAM pager,
//!   or the built-in demand-zero pager) resolves;
//! * [`frames`] — the physical frame allocator, whose *freed* queue feeds
//!   the zeroing thread (freed pages of sensitive apps may hold secrets,
//!   §7);
//! * [`zero_thread`] — the kernel thread that zeroes freed pages at the
//!   paper's measured 4.014 GB/s;
//! * [`crypto_api`] — a Linux-CryptoAPI-like cipher registry with
//!   priorities; Sentry registers AES On SoC *above* the generic AES so
//!   legacy consumers (dm-crypt) pick it up transparently (§7);
//! * [`block`]/[`dmcrypt`]/[`bufcache`]/[`vfs`] — the storage stack the
//!   dm-crypt experiments (Figure 9) run on;
//! * [`sched`] — a round-robin scheduler with the unschedulable queue
//!   Sentry parks encrypted foreground apps in while the device is
//!   locked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod bufcache;
pub mod crypto_api;
pub mod dmcrypt;
pub mod error;
pub mod fault;
pub mod frames;
pub mod kernel;
pub mod layout;
pub mod pagetable;
pub mod process;
pub mod sched;
pub mod vfs;
pub mod zero_thread;

pub use error::KernelError;
pub use fault::{AccessKind, FaultResolution, PageFault};
pub use kernel::Kernel;
pub use process::Pid;
