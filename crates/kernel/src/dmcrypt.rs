//! dm-crypt: transparent block-level encryption.
//!
//! "At a high-level, dm-crypt makes three calls to an AES library, one to
//! set the encryption and decryption keys, and two calls to encrypt and
//! decrypt data" (§7). The module asks the kernel's Crypto API for its
//! cipher, so when Sentry registers AES On SoC at higher priority,
//! dm-crypt transparently stops leaking AES state to DRAM — no dm-crypt
//! changes needed beyond using the API.
//!
//! Per-sector IVs use the `plain64` convention (little-endian sector
//! number), as in stock Linux dm-crypt.

use crate::block::{BlockDevice, SECTOR_SIZE};
use crate::crypto_api::CryptoApi;
use crate::error::KernelError;
use sentry_soc::Soc;

/// A dm-crypt mapping over a block device.
#[derive(Debug, Clone)]
pub struct DmCrypt {
    cipher: Option<String>,
}

impl DmCrypt {
    /// A mapping that uses the Crypto API's *preferred* cipher — the
    /// paper's priority mechanism in action.
    #[must_use]
    pub fn with_preferred_cipher() -> Self {
        DmCrypt { cipher: None }
    }

    /// A mapping pinned to a specific registered cipher (used by the
    /// baseline measurements).
    #[must_use]
    pub fn with_cipher(name: impl Into<String>) -> Self {
        DmCrypt {
            cipher: Some(name.into()),
        }
    }

    /// The `plain64` IV for a sector.
    #[must_use]
    pub fn sector_iv(sector: u64) -> [u8; 16] {
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&sector.to_le_bytes());
        iv
    }

    fn engine<'a>(
        &self,
        api: &'a mut CryptoApi,
    ) -> Result<&'a mut (dyn crate::crypto_api::CipherEngine + 'static), KernelError> {
        match &self.cipher {
            Some(name) => api.by_name_mut(name),
            None => api.preferred_mut(),
        }
    }

    /// Install the volume key (dm-crypt's one key-setting call).
    ///
    /// # Errors
    ///
    /// Propagates cipher lookup and key errors.
    pub fn set_key(
        &self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        key: &[u8],
    ) -> Result<(), KernelError> {
        self.engine(api)?.set_key(soc, key)
    }

    /// Read and decrypt whole sectors.
    ///
    /// # Errors
    ///
    /// Propagates block and cipher errors.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not a whole number of sectors.
    pub fn read(
        &self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        dev: &mut dyn BlockDevice,
        sector: u64,
        buf: &mut [u8],
    ) -> Result<(), KernelError> {
        assert!(buf.len().is_multiple_of(SECTOR_SIZE), "whole sectors only");
        dev.read_sectors(sector, buf, &mut soc.clock)?;
        // One extent call for the whole request: an engine with a batch
        // backend decrypts the sector run as a single block stream
        // instead of draining its pipeline at every 512-byte boundary.
        let ivs: Vec<[u8; 16]> = (0..buf.len() / SECTOR_SIZE)
            .map(|i| Self::sector_iv(sector + i as u64))
            .collect();
        self.engine(api)?.decrypt_extent(soc, &ivs, buf)
    }

    /// Encrypt and write whole sectors.
    ///
    /// # Errors
    ///
    /// Propagates block and cipher errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of sectors.
    pub fn write(
        &self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        dev: &mut dyn BlockDevice,
        sector: u64,
        data: &[u8],
    ) -> Result<(), KernelError> {
        assert!(data.len().is_multiple_of(SECTOR_SIZE), "whole sectors only");
        let mut ct = data.to_vec();
        let ivs: Vec<[u8; 16]> = (0..data.len() / SECTOR_SIZE)
            .map(|i| Self::sector_iv(sector + i as u64))
            .collect();
        self.engine(api)?.encrypt_extent(soc, &ivs, &mut ct)?;
        dev.write_sectors(sector, &ct, &mut soc.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::RamDisk;
    use crate::crypto_api::GenericAesEngine;

    fn setup() -> (CryptoApi, Soc, RamDisk, DmCrypt) {
        let mut api = CryptoApi::new();
        api.register(Box::new(GenericAesEngine::new(0)));
        let mut soc = Soc::tegra3_small();
        let dm = DmCrypt::with_preferred_cipher();
        dm.set_key(&mut api, &mut soc, &[9u8; 16]).unwrap();
        (api, soc, RamDisk::new(256), dm)
    }

    #[test]
    fn roundtrip_through_encryption() {
        let (mut api, mut soc, mut disk, dm) = setup();
        let data = vec![0x5Au8; SECTOR_SIZE * 4];
        dm.write(&mut api, &mut soc, &mut disk, 10, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        dm.read(&mut api, &mut soc, &mut disk, 10, &mut back)
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn on_disk_bytes_are_ciphertext() {
        let (mut api, mut soc, mut disk, dm) = setup();
        let data = vec![0x5Au8; SECTOR_SIZE];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
        let mut raw = vec![0u8; SECTOR_SIZE];
        let mut clock = sentry_soc::SimClock::new();
        disk.read_sectors(0, &mut raw, &mut clock).unwrap();
        assert_ne!(raw, data, "device must hold ciphertext");
    }

    #[test]
    fn equal_sectors_encrypt_differently() {
        // plain64 IVs differ per sector, so identical plaintext sectors
        // yield different ciphertext.
        let (mut api, mut soc, mut disk, dm) = setup();
        let data = vec![0x77u8; SECTOR_SIZE * 2];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
        let mut raw = vec![0u8; SECTOR_SIZE * 2];
        let mut clock = sentry_soc::SimClock::new();
        disk.read_sectors(0, &mut raw, &mut clock).unwrap();
        assert_ne!(raw[..SECTOR_SIZE], raw[SECTOR_SIZE..]);
    }

    #[test]
    fn batched_requests_match_single_sector_requests() {
        // The on-disk format is per-sector CBC with plain64 IVs; a
        // multi-sector request must produce exactly the bytes that
        // sector-at-a-time requests would, so volumes stay readable
        // across request-size changes.
        let (mut api, mut soc, mut disk, dm) = setup();
        let data: Vec<u8> = (0..SECTOR_SIZE * 8).map(|i| (i * 7) as u8).collect();
        dm.write(&mut api, &mut soc, &mut disk, 4, &data).unwrap();
        let mut whole = vec![0u8; data.len()];
        dm.read(&mut api, &mut soc, &mut disk, 4, &mut whole)
            .unwrap();
        assert_eq!(whole, data);
        for (i, expect) in data.chunks_exact(SECTOR_SIZE).enumerate() {
            let mut one = vec![0u8; SECTOR_SIZE];
            dm.read(&mut api, &mut soc, &mut disk, 4 + i as u64, &mut one)
                .unwrap();
            assert_eq!(one, expect, "sector {i}");
        }
    }

    #[test]
    fn sector_iv_is_little_endian_sector_number() {
        let iv = DmCrypt::sector_iv(0x0102_0304);
        assert_eq!(iv[0], 0x04);
        assert_eq!(iv[3], 0x01);
        assert_eq!(&iv[8..], &[0u8; 8]);
    }

    #[test]
    fn pinned_cipher_is_honoured() {
        let (mut api, mut soc, mut disk, _) = setup();
        let dm = DmCrypt::with_cipher("aes-cbc-generic");
        dm.set_key(&mut api, &mut soc, &[1u8; 16]).unwrap();
        let data = vec![1u8; SECTOR_SIZE];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
        let missing = DmCrypt::with_cipher("aes-none");
        assert!(missing.set_key(&mut api, &mut soc, &[1u8; 16]).is_err());
    }
}
