//! dm-crypt: transparent block-level encryption.
//!
//! "At a high-level, dm-crypt makes three calls to an AES library, one to
//! set the encryption and decryption keys, and two calls to encrypt and
//! decrypt data" (§7). The module asks the kernel's Crypto API for its
//! cipher, so when Sentry registers AES On SoC at higher priority,
//! dm-crypt transparently stops leaking AES state to DRAM — no dm-crypt
//! changes needed beyond using the API.
//!
//! Per-sector IVs use the `plain64` convention (little-endian sector
//! number), as in stock Linux dm-crypt.
//!
//! On top of the paper's confidentiality-only design the mapping keeps a
//! per-sector authentication tag — CMAC over `plain64-IV ∥ ciphertext`
//! truncated to 64 bits, under a key derived from the volume key — so a
//! device (or the DMA path to it) that returns tampered or spliced
//! ciphertext is caught *before* the bytes are decrypted and handed to
//! the filesystem. Tags live in kernel memory, never on the device, and
//! sectors that were never written through this mapping pass through
//! unverified (there is nothing to compare against).

use crate::block::{BlockDevice, SECTOR_SIZE};
use crate::crypto_api::CryptoApi;
use crate::error::KernelError;
use crate::layout::{ACCEL_DMA_BASE, ACCEL_DMA_CONTROLLER, ACCEL_DMA_SIZE};
use sentry_crypto::modes::ctr_crypt_extents;
use sentry_crypto::pipeline::{ctr_keystream, xor_keystream};
use sentry_crypto::{
    Aes, BitslicedAes, Cmac, FailureKind, FallbackReason, HealthConfig, HealthGovernor,
    HealthState, HealthStats, KeystreamCache, KeystreamStats, PageCipherMode, PipelineConfig,
};
use sentry_soc::accel::{AccelPowerState, WaitOutcome};
use sentry_soc::{Soc, SocError};
use std::cell::RefCell;
use std::collections::HashMap;

/// Cumulative counters for the overlapped read path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadOverlapStats {
    /// Miss extents submitted to the accelerator queue.
    pub routed_extents: u64,
    /// Sectors decrypted via queued accelerator descriptors.
    pub routed_sectors: u64,
    /// Sectors decrypted inline on the CPU engine (fallbacks).
    pub inline_sectors: u64,
    /// Sectors finished by XOR of precomputed keystream.
    pub xor_sectors: u64,
    /// Keystream sectors precomputed under the block-device wait.
    pub precomputed_under_disk: u64,
    /// Keystream sectors precomputed while an accel descriptor was in
    /// flight.
    pub precomputed_under_accel: u64,
    /// Nanoseconds the CPU stalled on accel completions.
    pub accel_stall_ns: u64,
    /// Fallbacks because the pipeline was disabled or unkeyed.
    pub fallback_disabled: u64,
    /// Fallbacks because the accelerator clock was down-scaled.
    pub fallback_down_scaled: u64,
    /// Fallbacks because the cipher mode is serially chained.
    pub fallback_unsupported_mode: u64,
    /// Fallbacks because the miss run was below `min_accel_sectors`.
    pub fallback_below_threshold: u64,
    /// Fallbacks because the health breaker was open for the accel path.
    pub fallback_breaker_open: u64,
    /// Keystream precompute passes cut short by the pressure governor's
    /// fill cap (elective cache growth shed while on-SoC space is
    /// scarce).
    pub keystream_fill_capped: u64,
    /// Accelerator descriptors abandoned at the watchdog deadline.
    pub accel_timeouts: u64,
    /// Accelerator descriptors retired with a corrupt status word.
    pub accel_corrupt: u64,
    /// Health-governor counters for this mapping (breaker trips, probes,
    /// abandoned and CPU-fallback bytes, disk retries), synced from the
    /// governor at snapshot time.
    pub health: HealthStats,
}

impl ReadOverlapStats {
    fn note_fallback(&mut self, reason: FallbackReason) {
        match reason {
            FallbackReason::Disabled => self.fallback_disabled += 1,
            FallbackReason::AccelDownScaled => self.fallback_down_scaled += 1,
            FallbackReason::UnsupportedCipherMode => self.fallback_unsupported_mode += 1,
            FallbackReason::BelowThreshold => self.fallback_below_threshold += 1,
            FallbackReason::BreakerOpen => self.fallback_breaker_open += 1,
        }
    }

    /// Total fallback events.
    #[must_use]
    pub fn fallbacks(&self) -> u64 {
        self.fallback_disabled
            + self.fallback_down_scaled
            + self.fallback_unsupported_mode
            + self.fallback_below_threshold
            + self.fallback_breaker_open
    }
}

/// Per-volume state of the asynchronous read pipeline: the keystream
/// cache, the volume-keyed bitsliced cipher that fills it, and counters.
#[derive(Debug, Clone)]
pub struct ReadPipeline {
    config: PipelineConfig,
    cache: KeystreamCache,
    /// Pressure-governor fill cap: while set, precompute stops growing
    /// the cache past this many resident sectors (existing entries stay
    /// usable). `None` leaves the cache's own capacity in charge.
    fill_cap: Option<usize>,
    /// Bitsliced cipher under the volume key — same key the engine was
    /// given, so its CTR output is byte-identical to the engine's.
    /// `None` until `set_key` runs with the pipeline enabled.
    bits: Option<BitslicedAes>,
    /// Cumulative counters.
    pub stats: ReadOverlapStats,
}

impl ReadPipeline {
    fn new(config: PipelineConfig) -> Self {
        ReadPipeline {
            config,
            cache: KeystreamCache::new(SECTOR_SIZE, config.keystream_sectors),
            fill_cap: None,
            bits: None,
            stats: ReadOverlapStats::default(),
        }
    }

    fn rekey(&mut self, key: &[u8]) {
        // Volume-key rotation: every cached keystream buffer was derived
        // from the old key — zeroize the lot and bump the epoch so no
        // in-flight consumer can hit.
        self.cache.rotate_epoch();
        self.bits = BitslicedAes::new(key).ok();
    }
}

/// A dm-crypt mapping over a block device.
#[derive(Debug, Clone)]
pub struct DmCrypt {
    cipher: Option<String>,
    /// Sector MAC, derived from the volume key at `set_key`
    /// (`E_volumekey("SENTRY-DMCRYPT-1")`); `None` until a key is set.
    mac: RefCell<Option<Cmac<Aes>>>,
    /// Recorded tag per absolute sector number.
    tags: RefCell<HashMap<u64, [u8; 8]>>,
    /// Asynchronous read pipeline; `None` (the default) keeps the
    /// historical inline behaviour.
    pipeline: RefCell<Option<ReadPipeline>>,
    /// Health governor for this mapping's accelerator dispatch and disk
    /// retries. Enabled with default tuning from construction; flaky
    /// hardware degrades to the CPU path instead of hanging the read.
    health: RefCell<HealthGovernor>,
}

impl DmCrypt {
    /// A mapping that uses the Crypto API's *preferred* cipher — the
    /// paper's priority mechanism in action.
    #[must_use]
    pub fn with_preferred_cipher() -> Self {
        DmCrypt {
            cipher: None,
            mac: RefCell::new(None),
            tags: RefCell::new(HashMap::new()),
            pipeline: RefCell::new(None),
            health: RefCell::new(HealthGovernor::new(HealthConfig::default())),
        }
    }

    /// A mapping pinned to a specific registered cipher (used by the
    /// baseline measurements).
    #[must_use]
    pub fn with_cipher(name: impl Into<String>) -> Self {
        DmCrypt {
            cipher: Some(name.into()),
            mac: RefCell::new(None),
            tags: RefCell::new(HashMap::new()),
            pipeline: RefCell::new(None),
            health: RefCell::new(HealthGovernor::new(HealthConfig::default())),
        }
    }

    /// Replace the health-governor tuning. Resets the breaker state and
    /// counters — call at mapping setup, not mid-flight.
    pub fn set_health(&self, config: HealthConfig) {
        *self.health.borrow_mut() = HealthGovernor::new(config);
    }

    /// Snapshot of the governor's counters, folding any still-open
    /// degraded interval up to `now_ns` into `time_degraded_ns`.
    #[must_use]
    pub fn health_stats(&self, now_ns: u64) -> HealthStats {
        let mut h = self.health.borrow_mut();
        h.finalize(now_ns);
        h.stats
    }

    /// Current breaker state for this mapping's accelerator path.
    #[must_use]
    pub fn health_state(&self) -> HealthState {
        self.health.borrow().state()
    }

    /// Enable the asynchronous read pipeline. Call before `set_key` so
    /// the keystream precompute lanes get the volume key; enabling later
    /// leaves the pipeline keyless (reads fall back inline) until the
    /// next `set_key`.
    pub fn enable_pipeline(&self, config: PipelineConfig) {
        *self.pipeline.borrow_mut() = Some(ReadPipeline::new(config));
    }

    /// Zeroize every cached keystream buffer and rotate the cache epoch.
    /// Called on device lock: keystream is key-equivalent material and
    /// must not survive a lock transition.
    pub fn zeroize_keystream(&self) {
        if let Some(p) = self.pipeline.borrow_mut().as_mut() {
            p.cache.rotate_epoch();
        }
    }

    /// Install (or clear) the pressure governor's keystream fill cap:
    /// while set, the precompute lanes stop growing the cache past `cap`
    /// resident sectors. Entries already cached keep serving hits —
    /// the cap sheds elective growth, it does not discard keystream.
    pub fn set_keystream_cap(&self, cap: Option<usize>) {
        if let Some(p) = self.pipeline.borrow_mut().as_mut() {
            p.fill_cap = cap;
        }
    }

    /// Snapshot of the pipeline counters, if the pipeline is enabled.
    #[must_use]
    pub fn pipeline_stats(&self) -> Option<(ReadOverlapStats, KeystreamStats)> {
        self.pipeline.borrow().as_ref().map(|p| {
            let mut stats = p.stats;
            stats.health = self.health.borrow().stats;
            (stats, p.cache.stats)
        })
    }

    /// Number of keystream sectors currently resident in the cache.
    #[must_use]
    pub fn keystream_resident(&self) -> usize {
        self.pipeline.borrow().as_ref().map_or(0, |p| p.cache.len())
    }

    /// The `plain64` IV for a sector.
    #[must_use]
    pub fn sector_iv(sector: u64) -> [u8; 16] {
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&sector.to_le_bytes());
        iv
    }

    fn engine<'a>(
        &self,
        api: &'a mut CryptoApi,
    ) -> Result<&'a mut (dyn crate::crypto_api::CipherEngine + 'static), KernelError> {
        match &self.cipher {
            Some(name) => api.by_name_mut(name),
            None => api.preferred_mut(),
        }
    }

    /// Install the volume key (dm-crypt's one key-setting call).
    ///
    /// # Errors
    ///
    /// Propagates cipher lookup and key errors.
    pub fn set_key(
        &self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        key: &[u8],
    ) -> Result<(), KernelError> {
        self.engine(api)?.set_key(soc, key)?;
        // Domain-separated sector-MAC key: encrypting a fixed label
        // under the volume key reuses the installed cipher family
        // without a second key-management path.
        let volume = Aes::new(key)?;
        let mut mk = *b"SENTRY-DMCRYPT-1";
        volume.encrypt_block(&mut mk);
        *self.mac.borrow_mut() = Some(Cmac::new(Aes::new(&mk)?));
        self.tags.borrow_mut().clear();
        if let Some(p) = self.pipeline.borrow_mut().as_mut() {
            p.rekey(key);
        }
        Ok(())
    }

    /// Read and decrypt whole sectors.
    ///
    /// # Errors
    ///
    /// Propagates block and cipher errors.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not a whole number of sectors.
    pub fn read(
        &self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        dev: &mut dyn BlockDevice,
        sector: u64,
        buf: &mut [u8],
    ) -> Result<(), KernelError> {
        assert!(buf.len().is_multiple_of(SECTOR_SIZE), "whole sectors only");
        let t0 = soc.clock.now_ns();
        // Transient device faults (injected at the "disk.read" site) get
        // a bounded retry budget with exponential sim-clock backoff; a
        // stall at the same site just inflates the disk wait. With the
        // governor disabled the budget is zero and faults surface raw.
        let mut attempt: u32 = 0;
        loop {
            match soc.failpoint("disk.read") {
                Ok(()) => {
                    dev.read_sectors(sector, buf, &mut soc.clock)?;
                    if attempt > 0 {
                        self.health.borrow_mut().stats.disk.recovered += 1;
                    }
                    break;
                }
                Err(e @ SocError::DeviceFault { .. }) => {
                    let mut h = self.health.borrow_mut();
                    h.stats.disk.attempts += 1;
                    attempt += 1;
                    if attempt > h.disk_retry_budget() {
                        h.stats.disk.exhausted += 1;
                        return Err(e.into());
                    }
                    let backoff = h.disk_backoff_ns(attempt);
                    drop(h);
                    soc.clock.advance(backoff);
                }
                Err(e) => return Err(e.into()),
            }
        }
        let disk_wait_ns = soc.clock.now_ns() - t0;
        // Authenticate the raw ciphertext before any of it is decrypted:
        // a spliced or bit-flipped sector must fail closed, not hand the
        // filesystem plausible-looking garbage.
        if let Some(mac) = self.mac.borrow().as_ref() {
            let tags = self.tags.borrow();
            for (i, ct) in buf.chunks_exact(SECTOR_SIZE).enumerate() {
                let s = sector + i as u64;
                let Some(expected) = tags.get(&s) else {
                    continue; // never written through this mapping
                };
                let got = mac.mac_parts_trunc8(&[&Self::sector_iv(s), ct]);
                if got != *expected {
                    return Err(KernelError::SectorTamper {
                        sector: s,
                        tag_expected: *expected,
                        tag_got: got,
                    });
                }
            }
        }
        let ivs: Vec<[u8; 16]> = (0..buf.len() / SECTOR_SIZE)
            .map(|i| Self::sector_iv(sector + i as u64))
            .collect();
        let mode = self.engine(api)?.mode();
        {
            let mut pl = self.pipeline.borrow_mut();
            if let Some(p) = pl.as_mut() {
                if p.config.enabled {
                    let mut health = self.health.borrow_mut();
                    return Self::read_overlapped(
                        p,
                        api,
                        soc,
                        sector,
                        buf,
                        &ivs,
                        mode,
                        disk_wait_ns,
                        &self.cipher,
                        &mut health,
                    );
                }
            }
        }
        // One extent call for the whole request: an engine with a batch
        // backend decrypts the sector run as a single block stream
        // instead of draining its pipeline at every 512-byte boundary.
        self.engine(api)?.decrypt_extent(soc, &ivs, buf)
    }

    /// The overlapped read path: XOR precomputed keystream into hit
    /// sectors, queue the miss run to the accelerator, and keep the CPU's
    /// bitsliced lanes busy precomputing lookahead keystream while the
    /// descriptor is in flight.
    #[allow(clippy::too_many_arguments)]
    fn read_overlapped(
        p: &mut ReadPipeline,
        api: &mut CryptoApi,
        soc: &mut Soc,
        sector: u64,
        buf: &mut [u8],
        ivs: &[[u8; 16]],
        mode: PageCipherMode,
        disk_wait_ns: u64,
        cipher: &Option<String>,
        health: &mut HealthGovernor,
    ) -> Result<(), KernelError> {
        fn engine<'a>(
            api: &'a mut CryptoApi,
            cipher: &Option<String>,
        ) -> Result<&'a mut (dyn crate::crypto_api::CipherEngine + 'static), KernelError> {
            match cipher {
                Some(name) => api.by_name_mut(name),
                None => api.preferred_mut(),
            }
        }
        let nsect = buf.len() / SECTOR_SIZE;
        if mode != PageCipherMode::Ctr {
            // CBC chains serially (and XTS has no data-independent
            // keystream): typed fallback, decrypt inline as before.
            p.stats.note_fallback(FallbackReason::UnsupportedCipherMode);
            p.stats.inline_sectors += nsect as u64;
            return engine(api, cipher)?.decrypt_extent(soc, ivs, buf);
        }
        let epoch = p.cache.epoch();
        let ks_cost = Self::keystream_cost_ns(soc, SECTOR_SIZE);
        // Precompute hidden under the device wait the caller just paid:
        // the CPU was idle while the device streamed, so keystream for
        // this request's leading uncached sectors comes for free up to
        // that budget (charging nothing is the same cost-substitution
        // convention AES On SoC's critical sections use).
        if let Some(bits) = &p.bits {
            let mut budget = disk_wait_ns;
            for (i, iv) in ivs.iter().enumerate() {
                let s = sector + i as u64;
                if p.cache.contains(s) {
                    continue;
                }
                if budget < ks_cost {
                    break;
                }
                if p.fill_cap.is_some_and(|cap| p.cache.len() >= cap) {
                    p.stats.keystream_fill_capped += 1;
                    break;
                }
                budget -= ks_cost;
                p.cache.insert(s, ctr_keystream(bits, iv, SECTOR_SIZE));
                p.stats.precomputed_under_disk += 1;
            }
        }
        // Partition the request: sectors with resident keystream finish
        // with a XOR; the rest form the miss run. `take` consumes each
        // entry — the single-use discipline.
        let mut hits: Vec<(usize, Vec<u8>)> = Vec::new();
        let mut misses: Vec<usize> = Vec::new();
        for i in 0..nsect {
            match p.cache.take(sector + i as u64, epoch) {
                Some(ks) => hits.push((i, ks)),
                None => misses.push(i),
            }
        }
        let route_reason = if misses.is_empty() {
            None
        } else if soc.accel.state != AccelPowerState::Awake {
            Some(FallbackReason::AccelDownScaled)
        } else if misses.len() < p.config.min_accel_sectors {
            Some(FallbackReason::BelowThreshold)
        } else if p.bits.is_none() {
            Some(FallbackReason::Disabled)
        } else if !health.allow_accel(soc.clock.now_ns()) {
            // Breaker is open and the probe interval has not elapsed:
            // the engine is distrusted, route everything to the CPU.
            Some(FallbackReason::BreakerOpen)
        } else {
            None
        };

        if route_reason.is_none() && !misses.is_empty() {
            // Gather the miss ciphertext and stage it through the DMA
            // bounce window — the accelerator masters the bus, so the
            // monitor sees this transfer.
            let mut gathered = Vec::with_capacity(misses.len() * SECTOR_SIZE);
            for &i in &misses {
                gathered.extend_from_slice(&buf[i * SECTOR_SIZE..(i + 1) * SECTOR_SIZE]);
            }
            let staged = gathered.len().min(ACCEL_DMA_SIZE as usize);
            soc.dma_write(ACCEL_DMA_CONTROLLER, ACCEL_DMA_BASE, &gathered[..staged])?;
            // Kill point mid-DMA: input (ciphertext) staged, result not
            // yet produced — a power cut here exposes no plaintext and
            // no keystream.
            soc.failpoint("accel.dma")?;
            // Sustained-fault staging site: an armed wedge/corrupt/slow
            // plan here lands on the descriptor submitted next.
            soc.failpoint("accel.submit")?;
            let now = soc.clock.now_ns();
            let id = soc
                .accel_queue
                .submit(&soc.accel, now, gathered.len() as u64);
            p.stats.routed_extents += 1;
            p.stats.routed_sectors += misses.len() as u64;

            // The CPU runs ahead while the descriptor is in flight:
            // first the XOR finish of the hit sectors…
            for (i, ks) in &mut hits {
                xor_keystream(&mut buf[*i * SECTOR_SIZE..(*i + 1) * SECTOR_SIZE], ks);
                soc.clock.advance(Self::xor_cost_ns(soc, SECTOR_SIZE));
                p.stats.xor_sectors += 1;
                for b in ks.iter_mut() {
                    *b = 0;
                }
            }
            // …then lookahead keystream for the sectors a sequential
            // reader will ask for next, until the engine catches up.
            if let Some(bits) = &p.bits {
                let deadline = soc.accel_queue.completion_ns(id).unwrap_or(now);
                let mut next = sector + nsect as u64;
                let end = next + p.config.precompute_ahead as u64;
                while next < end {
                    if p.cache.contains(next) {
                        next += 1;
                        continue;
                    }
                    if soc.clock.now_ns() + ks_cost > deadline {
                        break;
                    }
                    if p.fill_cap.is_some_and(|cap| p.cache.len() >= cap) {
                        p.stats.keystream_fill_capped += 1;
                        break;
                    }
                    p.cache.insert(
                        next,
                        ctr_keystream(bits, &Self::sector_iv(next), SECTOR_SIZE),
                    );
                    soc.clock.advance(ks_cost);
                    p.stats.precomputed_under_accel += 1;
                    next += 1;
                }
            }
            // Retire the descriptor (stalling only for whatever engine
            // time the CPU failed to cover) under a watchdog deadline
            // derived from the op's own modeled duration, and apply its
            // result — or abandon it and re-run the work on the CPU.
            let miss_ivs: Vec<[u8; 16]> = misses.iter().map(|&i| ivs[i]).collect();
            let deadline = now.saturating_add(
                health.watchdog_ns(soc.accel.op_duration_ns(gathered.len() as u64)),
            );
            match soc.accel_queue.wait_deadline(id, &mut soc.clock, deadline) {
                WaitOutcome::Done { stall_ns } => {
                    p.stats.accel_stall_ns += stall_ns;
                    health.record_success(soc.clock.now_ns());
                    let bits = p.bits.as_ref().expect("routed with key");
                    ctr_crypt_extents(bits, &miss_ivs, &mut gathered);
                    // Result write-back DMA happens at completion —
                    // before this point the bounce window held only
                    // ciphertext.
                    soc.dma_write(ACCEL_DMA_CONTROLLER, ACCEL_DMA_BASE, &gathered[..staged])?;
                }
                outcome @ (WaitOutcome::TimedOut { .. } | WaitOutcome::Corrupt { .. }) => {
                    match outcome {
                        WaitOutcome::TimedOut { waited_ns } => {
                            p.stats.accel_stall_ns += waited_ns;
                            p.stats.accel_timeouts += 1;
                            health.record_failure(soc.clock.now_ns(), FailureKind::Timeout);
                            health.note_abandoned(gathered.len() as u64);
                        }
                        WaitOutcome::Corrupt { stall_ns } => {
                            p.stats.accel_stall_ns += stall_ns;
                            p.stats.accel_corrupt += 1;
                            health.record_failure(soc.clock.now_ns(), FailureKind::Corrupt);
                        }
                        WaitOutcome::Done { .. } => unreachable!(),
                    }
                    // The bounce window holds either our staged
                    // ciphertext (timeout) or engine garbage (corrupt);
                    // zeroize it before the CPU takes over so the
                    // abandoned transfer leaves nothing for a bus
                    // monitor or cold-boot dump.
                    soc.dma_write(ACCEL_DMA_CONTROLLER, ACCEL_DMA_BASE, &vec![0u8; staged])?;
                    // Degraded mode: decrypt the miss run on the CPU
                    // engine. CTR under the same (key, sector IV) pairs
                    // is byte-identical to what the engine would have
                    // produced, so callers never see the fault.
                    engine(api, cipher)?.decrypt_extent(soc, &miss_ivs, &mut gathered)?;
                    health.note_fallback_crypt(gathered.len() as u64);
                    p.stats.inline_sectors += misses.len() as u64;
                }
            }
            for (k, &i) in misses.iter().enumerate() {
                buf[i * SECTOR_SIZE..(i + 1) * SECTOR_SIZE]
                    .copy_from_slice(&gathered[k * SECTOR_SIZE..(k + 1) * SECTOR_SIZE]);
            }
            return Ok(());
        }

        // Inline path: XOR whatever keystream we do have, then decrypt
        // the misses on the CPU engine.
        for (i, ks) in &mut hits {
            xor_keystream(&mut buf[*i * SECTOR_SIZE..(*i + 1) * SECTOR_SIZE], ks);
            soc.clock.advance(Self::xor_cost_ns(soc, SECTOR_SIZE));
            p.stats.xor_sectors += 1;
            for b in ks.iter_mut() {
                *b = 0;
            }
        }
        if let Some(reason) = route_reason {
            p.stats.note_fallback(reason);
            p.stats.inline_sectors += misses.len() as u64;
            let miss_ivs: Vec<[u8; 16]> = misses.iter().map(|&i| ivs[i]).collect();
            let mut gathered = Vec::with_capacity(misses.len() * SECTOR_SIZE);
            for &i in &misses {
                gathered.extend_from_slice(&buf[i * SECTOR_SIZE..(i + 1) * SECTOR_SIZE]);
            }
            engine(api, cipher)?.decrypt_extent(soc, &miss_ivs, &mut gathered)?;
            for (k, &i) in misses.iter().enumerate() {
                buf[i * SECTOR_SIZE..(i + 1) * SECTOR_SIZE]
                    .copy_from_slice(&gathered[k * SECTOR_SIZE..(k + 1) * SECTOR_SIZE]);
            }
        }
        Ok(())
    }

    /// CPU cost to generate `bytes` of keystream with the bitsliced
    /// lanes — the same per-block arithmetic charge the generic engine
    /// models.
    fn keystream_cost_ns(soc: &Soc, bytes: usize) -> u64 {
        (bytes as u64 / 16) * (soc.costs.aes_block_compute_ns + 4 * soc.costs.cache_hit_ns)
    }

    /// CPU cost to XOR one unit of precomputed keystream into data —
    /// word-wide streaming through the cache.
    fn xor_cost_ns(soc: &Soc, bytes: usize) -> u64 {
        (bytes as u64 / 32) * soc.costs.cache_hit_ns
    }

    /// Encrypt and write whole sectors.
    ///
    /// # Errors
    ///
    /// Propagates block and cipher errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of sectors.
    pub fn write(
        &self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        dev: &mut dyn BlockDevice,
        sector: u64,
        data: &[u8],
    ) -> Result<(), KernelError> {
        assert!(data.len().is_multiple_of(SECTOR_SIZE), "whole sectors only");
        let mut ct = data.to_vec();
        let ivs: Vec<[u8; 16]> = (0..data.len() / SECTOR_SIZE)
            .map(|i| Self::sector_iv(sector + i as u64))
            .collect();
        self.engine(api)?.encrypt_extent(soc, &ivs, &mut ct)?;
        // Record the tag before the ciphertext reaches the device, so
        // there is no window in which tampered bytes could be accepted.
        if let Some(mac) = self.mac.borrow().as_ref() {
            let mut tags = self.tags.borrow_mut();
            for (i, (chunk, iv)) in ct.chunks_exact(SECTOR_SIZE).zip(&ivs).enumerate() {
                tags.insert(sector + i as u64, mac.mac_parts_trunc8(&[iv, chunk]));
            }
        }
        dev.write_sectors(sector, &ct, &mut soc.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::RamDisk;
    use crate::crypto_api::GenericAesEngine;

    fn setup() -> (CryptoApi, Soc, RamDisk, DmCrypt) {
        let mut api = CryptoApi::new();
        api.register(Box::new(GenericAesEngine::new(0)));
        let mut soc = Soc::tegra3_small();
        let dm = DmCrypt::with_preferred_cipher();
        dm.set_key(&mut api, &mut soc, &[9u8; 16]).unwrap();
        (api, soc, RamDisk::new(256), dm)
    }

    #[test]
    fn roundtrip_through_encryption() {
        let (mut api, mut soc, mut disk, dm) = setup();
        let data = vec![0x5Au8; SECTOR_SIZE * 4];
        dm.write(&mut api, &mut soc, &mut disk, 10, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        dm.read(&mut api, &mut soc, &mut disk, 10, &mut back)
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn on_disk_bytes_are_ciphertext() {
        let (mut api, mut soc, mut disk, dm) = setup();
        let data = vec![0x5Au8; SECTOR_SIZE];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
        let mut raw = vec![0u8; SECTOR_SIZE];
        let mut clock = sentry_soc::SimClock::new();
        disk.read_sectors(0, &mut raw, &mut clock).unwrap();
        assert_ne!(raw, data, "device must hold ciphertext");
    }

    #[test]
    fn equal_sectors_encrypt_differently() {
        // plain64 IVs differ per sector, so identical plaintext sectors
        // yield different ciphertext.
        let (mut api, mut soc, mut disk, dm) = setup();
        let data = vec![0x77u8; SECTOR_SIZE * 2];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
        let mut raw = vec![0u8; SECTOR_SIZE * 2];
        let mut clock = sentry_soc::SimClock::new();
        disk.read_sectors(0, &mut raw, &mut clock).unwrap();
        assert_ne!(raw[..SECTOR_SIZE], raw[SECTOR_SIZE..]);
    }

    #[test]
    fn batched_requests_match_single_sector_requests() {
        // The on-disk format is per-sector CBC with plain64 IVs; a
        // multi-sector request must produce exactly the bytes that
        // sector-at-a-time requests would, so volumes stay readable
        // across request-size changes.
        let (mut api, mut soc, mut disk, dm) = setup();
        let data: Vec<u8> = (0..SECTOR_SIZE * 8).map(|i| (i * 7) as u8).collect();
        dm.write(&mut api, &mut soc, &mut disk, 4, &data).unwrap();
        let mut whole = vec![0u8; data.len()];
        dm.read(&mut api, &mut soc, &mut disk, 4, &mut whole)
            .unwrap();
        assert_eq!(whole, data);
        for (i, expect) in data.chunks_exact(SECTOR_SIZE).enumerate() {
            let mut one = vec![0u8; SECTOR_SIZE];
            dm.read(&mut api, &mut soc, &mut disk, 4 + i as u64, &mut one)
                .unwrap();
            assert_eq!(one, expect, "sector {i}");
        }
    }

    #[test]
    fn sector_iv_is_little_endian_sector_number() {
        let iv = DmCrypt::sector_iv(0x0102_0304);
        assert_eq!(iv[0], 0x04);
        assert_eq!(iv[3], 0x01);
        assert_eq!(&iv[8..], &[0u8; 8]);
    }

    #[test]
    fn tampered_sector_is_rejected_before_decrypt() {
        let (mut api, mut soc, mut disk, dm) = setup();
        let data = vec![0x42u8; SECTOR_SIZE * 2];
        dm.write(&mut api, &mut soc, &mut disk, 5, &data).unwrap();

        // Flip one ciphertext bit on the device behind dm-crypt's back.
        let mut raw = vec![0u8; SECTOR_SIZE];
        let mut clock = sentry_soc::SimClock::new();
        disk.read_sectors(6, &mut raw, &mut clock).unwrap();
        raw[100] ^= 0x08;
        disk.write_sectors(6, &raw, &mut clock).unwrap();

        let mut back = vec![0u8; SECTOR_SIZE * 2];
        let err = dm
            .read(&mut api, &mut soc, &mut disk, 5, &mut back)
            .unwrap_err();
        assert!(
            matches!(err, KernelError::SectorTamper { sector: 6, .. }),
            "{err}"
        );
        // The intact sector alone still reads fine.
        let mut one = vec![0u8; SECTOR_SIZE];
        dm.read(&mut api, &mut soc, &mut disk, 5, &mut one).unwrap();
        assert_eq!(one, data[..SECTOR_SIZE]);
    }

    #[test]
    fn spliced_sectors_are_rejected() {
        // Swapping two valid ciphertext sectors is caught because the
        // tag binds the sector number through the plain64 IV.
        let (mut api, mut soc, mut disk, dm) = setup();
        dm.write(&mut api, &mut soc, &mut disk, 0, &vec![1u8; SECTOR_SIZE])
            .unwrap();
        dm.write(&mut api, &mut soc, &mut disk, 1, &vec![2u8; SECTOR_SIZE])
            .unwrap();
        let mut clock = sentry_soc::SimClock::new();
        let (mut a, mut b) = (vec![0u8; SECTOR_SIZE], vec![0u8; SECTOR_SIZE]);
        disk.read_sectors(0, &mut a, &mut clock).unwrap();
        disk.read_sectors(1, &mut b, &mut clock).unwrap();
        disk.write_sectors(0, &b, &mut clock).unwrap();
        disk.write_sectors(1, &a, &mut clock).unwrap();

        let mut back = vec![0u8; SECTOR_SIZE];
        let err = dm
            .read(&mut api, &mut soc, &mut disk, 0, &mut back)
            .unwrap_err();
        assert!(matches!(err, KernelError::SectorTamper { sector: 0, .. }));
    }

    #[test]
    fn xts_mode_roundtrips_and_rejects_spliced_sectors() {
        // Under the XTS page cipher the per-sector tweak is the same
        // plain64 IV, so ciphertext moved between sectors decrypts under
        // the wrong tweak — and the sector CMAC (which binds the IV)
        // rejects it before decryption is even attempted.
        let (mut api, mut soc, mut disk, dm) = setup();
        api.preferred_mut()
            .unwrap()
            .set_mode(sentry_crypto::PageCipherMode::Xts)
            .unwrap();
        dm.set_key(&mut api, &mut soc, &[9u8; 16]).unwrap();

        let data: Vec<u8> = (0..SECTOR_SIZE * 2).map(|i| (i * 13) as u8).collect();
        dm.write(&mut api, &mut soc, &mut disk, 7, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        dm.read(&mut api, &mut soc, &mut disk, 7, &mut back)
            .unwrap();
        assert_eq!(back, data, "XTS roundtrip through dm-crypt");

        // Swap the two valid ciphertext sectors behind dm-crypt's back.
        let mut clock = sentry_soc::SimClock::new();
        let (mut a, mut b) = (vec![0u8; SECTOR_SIZE], vec![0u8; SECTOR_SIZE]);
        disk.read_sectors(7, &mut a, &mut clock).unwrap();
        disk.read_sectors(8, &mut b, &mut clock).unwrap();
        disk.write_sectors(7, &b, &mut clock).unwrap();
        disk.write_sectors(8, &a, &mut clock).unwrap();

        let err = dm
            .read(&mut api, &mut soc, &mut disk, 7, &mut back)
            .unwrap_err();
        assert!(matches!(err, KernelError::SectorTamper { sector: 7, .. }));
    }

    #[test]
    fn unwritten_sectors_pass_through_unverified() {
        // No tag was ever recorded for sector 99, so reading it (e.g. a
        // filesystem probing unformatted space) is not a tamper event.
        let (mut api, mut soc, mut disk, dm) = setup();
        let mut back = vec![0u8; SECTOR_SIZE];
        dm.read(&mut api, &mut soc, &mut disk, 99, &mut back)
            .unwrap();
    }

    #[test]
    fn rekeying_drops_stale_tags() {
        let (mut api, mut soc, mut disk, dm) = setup();
        dm.write(&mut api, &mut soc, &mut disk, 0, &vec![7u8; SECTOR_SIZE])
            .unwrap();
        // New volume key: old ciphertext is unreadable anyway, and the
        // stale tags must not condemn sectors the new key never wrote.
        dm.set_key(&mut api, &mut soc, &[13u8; 16]).unwrap();
        let mut back = vec![0u8; SECTOR_SIZE];
        dm.read(&mut api, &mut soc, &mut disk, 0, &mut back)
            .unwrap();
    }

    #[test]
    fn overlapped_ctr_read_is_byte_identical_and_faster() {
        let (mut api, mut soc, mut disk, dm) = setup();
        api.preferred_mut()
            .unwrap()
            .set_mode(PageCipherMode::Ctr)
            .unwrap();
        dm.set_key(&mut api, &mut soc, &[9u8; 16]).unwrap();
        soc.accel.state = AccelPowerState::Awake;

        let nsect = 64usize;
        let data: Vec<u8> = (0..nsect * SECTOR_SIZE).map(|i| (i * 31) as u8).collect();
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();

        // Inline reference read.
        let mut inline = vec![0u8; data.len()];
        let t0 = soc.clock.now_ns();
        for chunk in 0..nsect / 16 {
            dm.read(
                &mut api,
                &mut soc,
                &mut disk,
                chunk as u64 * 16,
                &mut inline[chunk * 16 * SECTOR_SIZE..(chunk + 1) * 16 * SECTOR_SIZE],
            )
            .unwrap();
        }
        let inline_ns = soc.clock.now_ns() - t0;
        assert_eq!(inline, data);

        // Same volume, pipeline enabled.
        let pdm = DmCrypt::with_preferred_cipher();
        pdm.enable_pipeline(PipelineConfig::enabled());
        pdm.set_key(&mut api, &mut soc, &[9u8; 16]).unwrap();
        // set_key cleared the sector tags; rewrite so the MAC state is
        // consistent (bytes on disk are identical — CTR is keyed by
        // (key, sector) only).
        pdm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();

        let mut overlapped = vec![0u8; data.len()];
        let t0 = soc.clock.now_ns();
        for chunk in 0..nsect / 16 {
            pdm.read(
                &mut api,
                &mut soc,
                &mut disk,
                chunk as u64 * 16,
                &mut overlapped[chunk * 16 * SECTOR_SIZE..(chunk + 1) * 16 * SECTOR_SIZE],
            )
            .unwrap();
        }
        let overlapped_ns = soc.clock.now_ns() - t0;
        assert_eq!(overlapped, data, "overlapped path is byte-identical");

        let (stats, ks) = pdm.pipeline_stats().unwrap();
        assert!(stats.routed_extents > 0, "{stats:?}");
        assert!(stats.xor_sectors > 0, "precomputed keystream was used");
        assert!(ks.hits > 0 && ks.precomputed > 0, "{ks:?}");
        assert!(
            overlapped_ns * 2 < inline_ns,
            "overlapped {overlapped_ns} ns vs inline {inline_ns} ns"
        );
    }

    #[test]
    fn down_scaled_accel_falls_back_inline_with_typed_reason() {
        let (mut api, mut soc, mut disk, _) = setup();
        api.preferred_mut()
            .unwrap()
            .set_mode(PageCipherMode::Ctr)
            .unwrap();
        let dm = DmCrypt::with_preferred_cipher();
        dm.enable_pipeline(PipelineConfig::enabled());
        dm.set_key(&mut api, &mut soc, &[9u8; 16]).unwrap();
        // Locked device: accel clock down-scaled (the Soc default).
        assert_eq!(soc.accel.state, AccelPowerState::DownScaled);

        let data = vec![0x3Cu8; SECTOR_SIZE * 16];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        dm.read(&mut api, &mut soc, &mut disk, 0, &mut back)
            .unwrap();
        assert_eq!(back, data);

        let (stats, _) = dm.pipeline_stats().unwrap();
        assert_eq!(stats.routed_extents, 0, "nothing queued while locked");
        assert!(stats.fallback_down_scaled > 0, "{stats:?}");
    }

    #[test]
    fn cbc_mode_falls_back_with_unsupported_mode_reason() {
        let (mut api, mut soc, mut disk, _) = setup();
        let dm = DmCrypt::with_preferred_cipher();
        dm.enable_pipeline(PipelineConfig::enabled());
        dm.set_key(&mut api, &mut soc, &[9u8; 16]).unwrap();
        soc.accel.state = AccelPowerState::Awake;

        let data = vec![0x11u8; SECTOR_SIZE * 8];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        dm.read(&mut api, &mut soc, &mut disk, 0, &mut back)
            .unwrap();
        assert_eq!(back, data);
        let (stats, _) = dm.pipeline_stats().unwrap();
        assert!(stats.fallback_unsupported_mode > 0);
        assert_eq!(stats.routed_extents, 0);
    }

    #[test]
    fn lock_zeroizes_keystream_and_rotates_epoch() {
        let (mut api, mut soc, mut disk, _) = setup();
        api.preferred_mut()
            .unwrap()
            .set_mode(PageCipherMode::Ctr)
            .unwrap();
        let dm = DmCrypt::with_preferred_cipher();
        dm.enable_pipeline(PipelineConfig::enabled());
        dm.set_key(&mut api, &mut soc, &[9u8; 16]).unwrap();
        soc.accel.state = AccelPowerState::Awake;

        let data = vec![0x77u8; SECTOR_SIZE * 32];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
        let mut back = vec![0u8; SECTOR_SIZE * 16];
        dm.read(&mut api, &mut soc, &mut disk, 0, &mut back)
            .unwrap();
        assert!(dm.keystream_resident() > 0, "lookahead filled the cache");

        dm.zeroize_keystream();
        assert_eq!(dm.keystream_resident(), 0, "lock leaves no keystream");
        let (_, ks) = dm.pipeline_stats().unwrap();
        assert!(ks.zeroized_on_rotate > 0);

        // Reads after the lock transition still work (epoch moved on).
        dm.read(&mut api, &mut soc, &mut disk, 16, &mut back)
            .unwrap();
        assert_eq!(back, data[16 * SECTOR_SIZE..32 * SECTOR_SIZE]);
    }

    #[test]
    fn keystream_cap_sheds_fill_without_breaking_reads() {
        let (mut api, mut soc, mut disk, _) = setup();
        api.preferred_mut()
            .unwrap()
            .set_mode(PageCipherMode::Ctr)
            .unwrap();
        let dm = DmCrypt::with_preferred_cipher();
        dm.enable_pipeline(PipelineConfig::enabled());
        dm.set_key(&mut api, &mut soc, &[9u8; 16]).unwrap();
        soc.accel.state = AccelPowerState::Awake;

        let data = vec![0x2Du8; SECTOR_SIZE * 32];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();

        dm.set_keystream_cap(Some(2));
        let mut back = vec![0u8; SECTOR_SIZE * 16];
        dm.read(&mut api, &mut soc, &mut disk, 0, &mut back)
            .unwrap();
        assert_eq!(back, data[..16 * SECTOR_SIZE], "capped reads stay correct");
        assert!(
            dm.keystream_resident() <= 2,
            "cache never grows past the cap: {}",
            dm.keystream_resident()
        );
        let (stats, _) = dm.pipeline_stats().unwrap();
        assert!(stats.keystream_fill_capped > 0, "{stats:?}");

        // Relief: lifting the cap restores elective fill.
        dm.set_keystream_cap(None);
        dm.read(&mut api, &mut soc, &mut disk, 16, &mut back)
            .unwrap();
        assert_eq!(back, data[16 * SECTOR_SIZE..32 * SECTOR_SIZE]);
        assert!(
            dm.keystream_resident() > 2,
            "uncapped reads refill the cache"
        );
    }

    #[test]
    fn pinned_cipher_is_honoured() {
        let (mut api, mut soc, mut disk, _) = setup();
        let dm = DmCrypt::with_cipher("aes-cbc-generic");
        dm.set_key(&mut api, &mut soc, &[1u8; 16]).unwrap();
        let data = vec![1u8; SECTOR_SIZE];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
        let missing = DmCrypt::with_cipher("aes-none");
        assert!(missing.set_key(&mut api, &mut soc, &[1u8; 16]).is_err());
    }
}
