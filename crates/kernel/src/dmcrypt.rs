//! dm-crypt: transparent block-level encryption.
//!
//! "At a high-level, dm-crypt makes three calls to an AES library, one to
//! set the encryption and decryption keys, and two calls to encrypt and
//! decrypt data" (§7). The module asks the kernel's Crypto API for its
//! cipher, so when Sentry registers AES On SoC at higher priority,
//! dm-crypt transparently stops leaking AES state to DRAM — no dm-crypt
//! changes needed beyond using the API.
//!
//! Per-sector IVs use the `plain64` convention (little-endian sector
//! number), as in stock Linux dm-crypt.
//!
//! On top of the paper's confidentiality-only design the mapping keeps a
//! per-sector authentication tag — CMAC over `plain64-IV ∥ ciphertext`
//! truncated to 64 bits, under a key derived from the volume key — so a
//! device (or the DMA path to it) that returns tampered or spliced
//! ciphertext is caught *before* the bytes are decrypted and handed to
//! the filesystem. Tags live in kernel memory, never on the device, and
//! sectors that were never written through this mapping pass through
//! unverified (there is nothing to compare against).

use crate::block::{BlockDevice, SECTOR_SIZE};
use crate::crypto_api::CryptoApi;
use crate::error::KernelError;
use sentry_crypto::{Aes, Cmac};
use sentry_soc::Soc;
use std::cell::RefCell;
use std::collections::HashMap;

/// A dm-crypt mapping over a block device.
#[derive(Debug, Clone)]
pub struct DmCrypt {
    cipher: Option<String>,
    /// Sector MAC, derived from the volume key at `set_key`
    /// (`E_volumekey("SENTRY-DMCRYPT-1")`); `None` until a key is set.
    mac: RefCell<Option<Cmac<Aes>>>,
    /// Recorded tag per absolute sector number.
    tags: RefCell<HashMap<u64, [u8; 8]>>,
}

impl DmCrypt {
    /// A mapping that uses the Crypto API's *preferred* cipher — the
    /// paper's priority mechanism in action.
    #[must_use]
    pub fn with_preferred_cipher() -> Self {
        DmCrypt {
            cipher: None,
            mac: RefCell::new(None),
            tags: RefCell::new(HashMap::new()),
        }
    }

    /// A mapping pinned to a specific registered cipher (used by the
    /// baseline measurements).
    #[must_use]
    pub fn with_cipher(name: impl Into<String>) -> Self {
        DmCrypt {
            cipher: Some(name.into()),
            mac: RefCell::new(None),
            tags: RefCell::new(HashMap::new()),
        }
    }

    /// The `plain64` IV for a sector.
    #[must_use]
    pub fn sector_iv(sector: u64) -> [u8; 16] {
        let mut iv = [0u8; 16];
        iv[..8].copy_from_slice(&sector.to_le_bytes());
        iv
    }

    fn engine<'a>(
        &self,
        api: &'a mut CryptoApi,
    ) -> Result<&'a mut (dyn crate::crypto_api::CipherEngine + 'static), KernelError> {
        match &self.cipher {
            Some(name) => api.by_name_mut(name),
            None => api.preferred_mut(),
        }
    }

    /// Install the volume key (dm-crypt's one key-setting call).
    ///
    /// # Errors
    ///
    /// Propagates cipher lookup and key errors.
    pub fn set_key(
        &self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        key: &[u8],
    ) -> Result<(), KernelError> {
        self.engine(api)?.set_key(soc, key)?;
        // Domain-separated sector-MAC key: encrypting a fixed label
        // under the volume key reuses the installed cipher family
        // without a second key-management path.
        let volume = Aes::new(key)?;
        let mut mk = *b"SENTRY-DMCRYPT-1";
        volume.encrypt_block(&mut mk);
        *self.mac.borrow_mut() = Some(Cmac::new(Aes::new(&mk)?));
        self.tags.borrow_mut().clear();
        Ok(())
    }

    /// Read and decrypt whole sectors.
    ///
    /// # Errors
    ///
    /// Propagates block and cipher errors.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not a whole number of sectors.
    pub fn read(
        &self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        dev: &mut dyn BlockDevice,
        sector: u64,
        buf: &mut [u8],
    ) -> Result<(), KernelError> {
        assert!(buf.len().is_multiple_of(SECTOR_SIZE), "whole sectors only");
        dev.read_sectors(sector, buf, &mut soc.clock)?;
        // Authenticate the raw ciphertext before any of it is decrypted:
        // a spliced or bit-flipped sector must fail closed, not hand the
        // filesystem plausible-looking garbage.
        if let Some(mac) = self.mac.borrow().as_ref() {
            let tags = self.tags.borrow();
            for (i, ct) in buf.chunks_exact(SECTOR_SIZE).enumerate() {
                let s = sector + i as u64;
                let Some(expected) = tags.get(&s) else {
                    continue; // never written through this mapping
                };
                let got = mac.mac_parts_trunc8(&[&Self::sector_iv(s), ct]);
                if got != *expected {
                    return Err(KernelError::SectorTamper {
                        sector: s,
                        tag_expected: *expected,
                        tag_got: got,
                    });
                }
            }
        }
        // One extent call for the whole request: an engine with a batch
        // backend decrypts the sector run as a single block stream
        // instead of draining its pipeline at every 512-byte boundary.
        let ivs: Vec<[u8; 16]> = (0..buf.len() / SECTOR_SIZE)
            .map(|i| Self::sector_iv(sector + i as u64))
            .collect();
        self.engine(api)?.decrypt_extent(soc, &ivs, buf)
    }

    /// Encrypt and write whole sectors.
    ///
    /// # Errors
    ///
    /// Propagates block and cipher errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of sectors.
    pub fn write(
        &self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        dev: &mut dyn BlockDevice,
        sector: u64,
        data: &[u8],
    ) -> Result<(), KernelError> {
        assert!(data.len().is_multiple_of(SECTOR_SIZE), "whole sectors only");
        let mut ct = data.to_vec();
        let ivs: Vec<[u8; 16]> = (0..data.len() / SECTOR_SIZE)
            .map(|i| Self::sector_iv(sector + i as u64))
            .collect();
        self.engine(api)?.encrypt_extent(soc, &ivs, &mut ct)?;
        // Record the tag before the ciphertext reaches the device, so
        // there is no window in which tampered bytes could be accepted.
        if let Some(mac) = self.mac.borrow().as_ref() {
            let mut tags = self.tags.borrow_mut();
            for (i, (chunk, iv)) in ct.chunks_exact(SECTOR_SIZE).zip(&ivs).enumerate() {
                tags.insert(sector + i as u64, mac.mac_parts_trunc8(&[iv, chunk]));
            }
        }
        dev.write_sectors(sector, &ct, &mut soc.clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::RamDisk;
    use crate::crypto_api::GenericAesEngine;

    fn setup() -> (CryptoApi, Soc, RamDisk, DmCrypt) {
        let mut api = CryptoApi::new();
        api.register(Box::new(GenericAesEngine::new(0)));
        let mut soc = Soc::tegra3_small();
        let dm = DmCrypt::with_preferred_cipher();
        dm.set_key(&mut api, &mut soc, &[9u8; 16]).unwrap();
        (api, soc, RamDisk::new(256), dm)
    }

    #[test]
    fn roundtrip_through_encryption() {
        let (mut api, mut soc, mut disk, dm) = setup();
        let data = vec![0x5Au8; SECTOR_SIZE * 4];
        dm.write(&mut api, &mut soc, &mut disk, 10, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        dm.read(&mut api, &mut soc, &mut disk, 10, &mut back)
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn on_disk_bytes_are_ciphertext() {
        let (mut api, mut soc, mut disk, dm) = setup();
        let data = vec![0x5Au8; SECTOR_SIZE];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
        let mut raw = vec![0u8; SECTOR_SIZE];
        let mut clock = sentry_soc::SimClock::new();
        disk.read_sectors(0, &mut raw, &mut clock).unwrap();
        assert_ne!(raw, data, "device must hold ciphertext");
    }

    #[test]
    fn equal_sectors_encrypt_differently() {
        // plain64 IVs differ per sector, so identical plaintext sectors
        // yield different ciphertext.
        let (mut api, mut soc, mut disk, dm) = setup();
        let data = vec![0x77u8; SECTOR_SIZE * 2];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
        let mut raw = vec![0u8; SECTOR_SIZE * 2];
        let mut clock = sentry_soc::SimClock::new();
        disk.read_sectors(0, &mut raw, &mut clock).unwrap();
        assert_ne!(raw[..SECTOR_SIZE], raw[SECTOR_SIZE..]);
    }

    #[test]
    fn batched_requests_match_single_sector_requests() {
        // The on-disk format is per-sector CBC with plain64 IVs; a
        // multi-sector request must produce exactly the bytes that
        // sector-at-a-time requests would, so volumes stay readable
        // across request-size changes.
        let (mut api, mut soc, mut disk, dm) = setup();
        let data: Vec<u8> = (0..SECTOR_SIZE * 8).map(|i| (i * 7) as u8).collect();
        dm.write(&mut api, &mut soc, &mut disk, 4, &data).unwrap();
        let mut whole = vec![0u8; data.len()];
        dm.read(&mut api, &mut soc, &mut disk, 4, &mut whole)
            .unwrap();
        assert_eq!(whole, data);
        for (i, expect) in data.chunks_exact(SECTOR_SIZE).enumerate() {
            let mut one = vec![0u8; SECTOR_SIZE];
            dm.read(&mut api, &mut soc, &mut disk, 4 + i as u64, &mut one)
                .unwrap();
            assert_eq!(one, expect, "sector {i}");
        }
    }

    #[test]
    fn sector_iv_is_little_endian_sector_number() {
        let iv = DmCrypt::sector_iv(0x0102_0304);
        assert_eq!(iv[0], 0x04);
        assert_eq!(iv[3], 0x01);
        assert_eq!(&iv[8..], &[0u8; 8]);
    }

    #[test]
    fn tampered_sector_is_rejected_before_decrypt() {
        let (mut api, mut soc, mut disk, dm) = setup();
        let data = vec![0x42u8; SECTOR_SIZE * 2];
        dm.write(&mut api, &mut soc, &mut disk, 5, &data).unwrap();

        // Flip one ciphertext bit on the device behind dm-crypt's back.
        let mut raw = vec![0u8; SECTOR_SIZE];
        let mut clock = sentry_soc::SimClock::new();
        disk.read_sectors(6, &mut raw, &mut clock).unwrap();
        raw[100] ^= 0x08;
        disk.write_sectors(6, &raw, &mut clock).unwrap();

        let mut back = vec![0u8; SECTOR_SIZE * 2];
        let err = dm
            .read(&mut api, &mut soc, &mut disk, 5, &mut back)
            .unwrap_err();
        assert!(
            matches!(err, KernelError::SectorTamper { sector: 6, .. }),
            "{err}"
        );
        // The intact sector alone still reads fine.
        let mut one = vec![0u8; SECTOR_SIZE];
        dm.read(&mut api, &mut soc, &mut disk, 5, &mut one).unwrap();
        assert_eq!(one, data[..SECTOR_SIZE]);
    }

    #[test]
    fn spliced_sectors_are_rejected() {
        // Swapping two valid ciphertext sectors is caught because the
        // tag binds the sector number through the plain64 IV.
        let (mut api, mut soc, mut disk, dm) = setup();
        dm.write(&mut api, &mut soc, &mut disk, 0, &vec![1u8; SECTOR_SIZE])
            .unwrap();
        dm.write(&mut api, &mut soc, &mut disk, 1, &vec![2u8; SECTOR_SIZE])
            .unwrap();
        let mut clock = sentry_soc::SimClock::new();
        let (mut a, mut b) = (vec![0u8; SECTOR_SIZE], vec![0u8; SECTOR_SIZE]);
        disk.read_sectors(0, &mut a, &mut clock).unwrap();
        disk.read_sectors(1, &mut b, &mut clock).unwrap();
        disk.write_sectors(0, &b, &mut clock).unwrap();
        disk.write_sectors(1, &a, &mut clock).unwrap();

        let mut back = vec![0u8; SECTOR_SIZE];
        let err = dm
            .read(&mut api, &mut soc, &mut disk, 0, &mut back)
            .unwrap_err();
        assert!(matches!(err, KernelError::SectorTamper { sector: 0, .. }));
    }

    #[test]
    fn xts_mode_roundtrips_and_rejects_spliced_sectors() {
        // Under the XTS page cipher the per-sector tweak is the same
        // plain64 IV, so ciphertext moved between sectors decrypts under
        // the wrong tweak — and the sector CMAC (which binds the IV)
        // rejects it before decryption is even attempted.
        let (mut api, mut soc, mut disk, dm) = setup();
        api.preferred_mut()
            .unwrap()
            .set_mode(sentry_crypto::PageCipherMode::Xts)
            .unwrap();
        dm.set_key(&mut api, &mut soc, &[9u8; 16]).unwrap();

        let data: Vec<u8> = (0..SECTOR_SIZE * 2).map(|i| (i * 13) as u8).collect();
        dm.write(&mut api, &mut soc, &mut disk, 7, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        dm.read(&mut api, &mut soc, &mut disk, 7, &mut back)
            .unwrap();
        assert_eq!(back, data, "XTS roundtrip through dm-crypt");

        // Swap the two valid ciphertext sectors behind dm-crypt's back.
        let mut clock = sentry_soc::SimClock::new();
        let (mut a, mut b) = (vec![0u8; SECTOR_SIZE], vec![0u8; SECTOR_SIZE]);
        disk.read_sectors(7, &mut a, &mut clock).unwrap();
        disk.read_sectors(8, &mut b, &mut clock).unwrap();
        disk.write_sectors(7, &b, &mut clock).unwrap();
        disk.write_sectors(8, &a, &mut clock).unwrap();

        let err = dm
            .read(&mut api, &mut soc, &mut disk, 7, &mut back)
            .unwrap_err();
        assert!(matches!(err, KernelError::SectorTamper { sector: 7, .. }));
    }

    #[test]
    fn unwritten_sectors_pass_through_unverified() {
        // No tag was ever recorded for sector 99, so reading it (e.g. a
        // filesystem probing unformatted space) is not a tamper event.
        let (mut api, mut soc, mut disk, dm) = setup();
        let mut back = vec![0u8; SECTOR_SIZE];
        dm.read(&mut api, &mut soc, &mut disk, 99, &mut back)
            .unwrap();
    }

    #[test]
    fn rekeying_drops_stale_tags() {
        let (mut api, mut soc, mut disk, dm) = setup();
        dm.write(&mut api, &mut soc, &mut disk, 0, &vec![7u8; SECTOR_SIZE])
            .unwrap();
        // New volume key: old ciphertext is unreadable anyway, and the
        // stale tags must not condemn sectors the new key never wrote.
        dm.set_key(&mut api, &mut soc, &[13u8; 16]).unwrap();
        let mut back = vec![0u8; SECTOR_SIZE];
        dm.read(&mut api, &mut soc, &mut disk, 0, &mut back)
            .unwrap();
    }

    #[test]
    fn pinned_cipher_is_honoured() {
        let (mut api, mut soc, mut disk, _) = setup();
        let dm = DmCrypt::with_cipher("aes-cbc-generic");
        dm.set_key(&mut api, &mut soc, &[1u8; 16]).unwrap();
        let data = vec![1u8; SECTOR_SIZE];
        dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
        let missing = DmCrypt::with_cipher("aes-none");
        assert!(missing.set_key(&mut api, &mut soc, &[1u8; 16]).is_err());
    }
}
