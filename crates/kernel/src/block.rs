//! Block devices.
//!
//! The dm-crypt experiments (Figure 9) run over "an in-memory disk
//! partition of 450 MB" — a RAM disk — so that the measurement isolates
//! encryption cost from flash latency. [`RamDisk`] models that device:
//! native storage with a calibrated streaming rate and per-request setup
//! cost.

use crate::error::KernelError;
use sentry_soc::SimClock;

/// Sector size in bytes.
pub const SECTOR_SIZE: usize = 512;

/// A sector-addressed block device.
pub trait BlockDevice {
    /// Device capacity in sectors.
    fn num_sectors(&self) -> u64;

    /// Read whole sectors starting at `sector`.
    ///
    /// # Errors
    ///
    /// [`KernelError::BlockOutOfRange`] if the span exceeds the device.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not a whole number of sectors.
    fn read_sectors(
        &mut self,
        sector: u64,
        buf: &mut [u8],
        clock: &mut SimClock,
    ) -> Result<(), KernelError>;

    /// Write whole sectors starting at `sector`.
    ///
    /// # Errors
    ///
    /// [`KernelError::BlockOutOfRange`] if the span exceeds the device.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of sectors.
    fn write_sectors(
        &mut self,
        sector: u64,
        data: &[u8],
        clock: &mut SimClock,
    ) -> Result<(), KernelError>;
}

/// An in-memory disk.
#[derive(Debug, Clone)]
pub struct RamDisk {
    data: Vec<u8>,
    /// Streaming rate, bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed per-request cost, nanoseconds (request queuing, completion).
    pub request_ns: u64,
}

impl RamDisk {
    /// A RAM disk of `sectors` sectors, calibrated to a memcpy-bound
    /// in-memory partition.
    #[must_use]
    pub fn new(sectors: u64) -> Self {
        RamDisk {
            data: vec![0u8; sectors as usize * SECTOR_SIZE],
            bytes_per_sec: 800.0e6,
            request_ns: 2_000,
        }
    }

    fn check(&self, sector: u64, len: usize) -> Result<(), KernelError> {
        assert!(len.is_multiple_of(SECTOR_SIZE), "whole sectors only");
        let end = sector
            .checked_mul(SECTOR_SIZE as u64)
            .and_then(|s| s.checked_add(len as u64));
        match end {
            Some(end) if end <= self.data.len() as u64 => Ok(()),
            _ => Err(KernelError::BlockOutOfRange { sector }),
        }
    }

    fn charge(&self, len: usize, clock: &mut SimClock) {
        clock.advance(self.request_ns + (len as f64 / self.bytes_per_sec * 1e9) as u64);
    }
}

impl BlockDevice for RamDisk {
    fn num_sectors(&self) -> u64 {
        (self.data.len() / SECTOR_SIZE) as u64
    }

    fn read_sectors(
        &mut self,
        sector: u64,
        buf: &mut [u8],
        clock: &mut SimClock,
    ) -> Result<(), KernelError> {
        self.check(sector, buf.len())?;
        let off = sector as usize * SECTOR_SIZE;
        buf.copy_from_slice(&self.data[off..off + buf.len()]);
        self.charge(buf.len(), clock);
        Ok(())
    }

    fn write_sectors(
        &mut self,
        sector: u64,
        data: &[u8],
        clock: &mut SimClock,
    ) -> Result<(), KernelError> {
        self.check(sector, data.len())?;
        let off = sector as usize * SECTOR_SIZE;
        self.data[off..off + data.len()].copy_from_slice(data);
        self.charge(data.len(), clock);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut disk = RamDisk::new(128);
        let mut clock = SimClock::new();
        let data = vec![0xAB; SECTOR_SIZE * 2];
        disk.write_sectors(3, &data, &mut clock).unwrap();
        let mut buf = vec![0u8; SECTOR_SIZE * 2];
        disk.read_sectors(3, &mut buf, &mut clock).unwrap();
        assert_eq!(buf, data);
        assert!(clock.now_ns() > 0);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut disk = RamDisk::new(4);
        let mut clock = SimClock::new();
        let mut buf = vec![0u8; SECTOR_SIZE];
        assert!(matches!(
            disk.read_sectors(4, &mut buf, &mut clock),
            Err(KernelError::BlockOutOfRange { sector: 4 })
        ));
        // Overflow-safe check.
        assert!(disk
            .read_sectors(u64::MAX / 256, &mut buf, &mut clock)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "whole sectors")]
    fn partial_sectors_panic() {
        let mut disk = RamDisk::new(4);
        let mut clock = SimClock::new();
        let mut buf = vec![0u8; 100];
        let _ = disk.read_sectors(0, &mut buf, &mut clock);
    }

    #[test]
    fn timing_scales_with_size() {
        let mut disk = RamDisk::new(4096);
        let mut c1 = SimClock::new();
        let mut c2 = SimClock::new();
        let small = vec![0u8; SECTOR_SIZE];
        let large = vec![0u8; SECTOR_SIZE * 64];
        disk.write_sectors(0, &small, &mut c1).unwrap();
        disk.write_sectors(0, &large, &mut c2).unwrap();
        assert!(c2.now_ns() > c1.now_ns());
    }
}
