//! Page faults.
//!
//! Sentry's encrypted-DRAM mechanism is built entirely on faults: the
//! paper clears the ARM `young` bit of a PTE "to ensure we trap whenever
//! this page is accessed" (§5), decrypts on page-in, and re-arms the
//! trap on page-out. The kernel model surfaces those traps as values so
//! the pager's logic is explicit and testable.

use std::fmt;

/// Whether the faulting access was a load or a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// A trapped memory access.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PageFault {
    /// The faulting process.
    pub pid: u32,
    /// The virtual page number of the faulting address.
    pub vpn: u64,
    /// Load or store.
    pub kind: AccessKind,
}

impl fmt::Display for PageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pid {} {} vpn {:#x}",
            self.pid,
            match self.kind {
                AccessKind::Read => "read of",
                AccessKind::Write => "write to",
            },
            self.vpn
        )
    }
}

/// Telemetry for one *resolved* on-demand fault: what the dispatcher
/// actually decrypted and what it cost.
///
/// With fault-cluster readahead a single trap may decrypt several
/// spatially-adjacent pages in one batched kernel call; `pages` counts
/// the faulting page plus those readahead companions, and `duration_ns`
/// is the simulated end-to-end latency the faulting access observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultResolution {
    /// The faulting process.
    pub pid: u32,
    /// The virtual page number that trapped.
    pub vpn: u64,
    /// Pages decrypted while servicing this fault (>= 1; > 1 means the
    /// readahead cluster pulled in encrypted neighbours).
    pub pages: usize,
    /// Simulated nanoseconds from trap entry to resolution.
    pub duration_ns: u64,
}

impl fmt::Display for FaultResolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pid {} vpn {:#x}: {} page(s) in {} ns",
            self.pid, self.vpn, self.pages, self.duration_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_display_mentions_pages_and_cost() {
        let r = FaultResolution {
            pid: 3,
            vpn: 0x10,
            pages: 8,
            duration_ns: 1234,
        };
        let s = r.to_string();
        assert!(s.contains("8 page(s)") && s.contains("1234"));
    }

    #[test]
    fn display_mentions_pid_and_vpn() {
        let f = PageFault {
            pid: 9,
            vpn: 0x42,
            kind: AccessKind::Write,
        };
        let s = f.to_string();
        assert!(s.contains("9") && s.contains("0x42") && s.contains("write"));
    }
}
