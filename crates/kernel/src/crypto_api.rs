//! A Linux-CryptoAPI-like cipher registry.
//!
//! The paper ports AES On SoC into the kernel's Crypto API and registers
//! it "with a higher priority than the default AES implementation. Thus,
//! if both the generic AES and our AES are loaded, the crypto system
//! will favor ours" (§7). Legacy consumers — dm-crypt here — ask the
//! registry for "aes-cbc" and transparently get the safe engine.
//!
//! The registry also records *where each engine's key material lives*,
//! which is what the attack experiments interrogate: the generic
//! software AES keeps its key schedule in kernel heap (DRAM), the
//! hardware accelerator in device registers fed over the bus, and AES On
//! SoC in iRAM or a locked cache way.

use crate::error::KernelError;
use crate::layout::CRYPTO_KEYS_BASE;
use sentry_crypto::modes::{
    cbc_decrypt, cbc_decrypt_extents, cbc_encrypt, cbc_encrypt_extents, ctr_crypt,
    ctr_crypt_extents, xts_crypt_extents, xts_decrypt, xts_encrypt,
};
use sentry_crypto::{Aes, BitslicedAes, PageCipherMode};
use sentry_soc::Soc;

/// Where an engine's sensitive key state resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyResidency {
    /// Kernel heap in DRAM — recoverable by memory attacks.
    Dram,
    /// On-SoC iRAM.
    Iram,
    /// A locked L2 cache way.
    LockedL2,
    /// Device registers of the crypto accelerator (on-chip, but data
    /// still crosses the bus).
    AccelRegisters,
}

/// A block cipher implementation registered with the kernel.
///
/// Engines are `Send` so a whole kernel (and the `Sentry` wrapping it)
/// can move across threads — the fleet harness builds thousands of
/// independent device stacks and drives each one entirely inside one
/// shard worker, shared-nothing.
pub trait CipherEngine: Send {
    /// Registry name, e.g. `"aes-cbc-generic"`.
    fn name(&self) -> &'static str;
    /// Selection priority; highest wins.
    fn priority(&self) -> i32;
    /// Where the key schedule lives.
    fn key_residency(&self) -> KeyResidency;
    /// Install a key.
    ///
    /// # Errors
    ///
    /// Implementation-specific; typically invalid key length.
    fn set_key(&mut self, soc: &mut Soc, key: &[u8]) -> Result<(), KernelError>;

    /// Select the page cipher mode for subsequent operations.
    ///
    /// The default implementation accepts only [`PageCipherMode::Cbc`] —
    /// the mode every engine has always implemented — so legacy engines
    /// stay correct without changes. Engines that implement the
    /// parallelizable modes override this.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnsupportedCipherMode`] if the engine does not
    /// implement `mode`.
    fn set_mode(&mut self, mode: PageCipherMode) -> Result<(), KernelError> {
        if mode == PageCipherMode::Cbc {
            Ok(())
        } else {
            Err(KernelError::UnsupportedCipherMode {
                engine: self.name(),
                mode: mode.name(),
            })
        }
    }

    /// The currently selected page cipher mode.
    fn mode(&self) -> PageCipherMode {
        PageCipherMode::Cbc
    }

    /// Encrypt `data` in place under the selected mode; `iv` is the CBC
    /// IV, the XTS tweak, or the initial CTR counter block.
    ///
    /// # Errors
    ///
    /// Fails if no key is installed.
    fn encrypt(&mut self, soc: &mut Soc, iv: &[u8; 16], data: &mut [u8])
        -> Result<(), KernelError>;
    /// Decrypt `data` in place under the selected mode.
    ///
    /// # Errors
    ///
    /// Fails if no key is installed.
    fn decrypt(&mut self, soc: &mut Soc, iv: &[u8; 16], data: &mut [u8])
        -> Result<(), KernelError>;

    /// Encrypt a run of `ivs.len()` consecutive equal-sized extents laid
    /// out back-to-back in `data`, the `i`-th keyed from `ivs[i]` (its
    /// CBC IV, XTS tweak, or CTR counter base, per the selected mode).
    ///
    /// This is how multi-sector dm-crypt requests and whole-pager sweeps
    /// reach an engine: one call per request instead of one per unit, so
    /// engines with a batch backend can keep their kernels full across
    /// unit boundaries. The default simply loops over [`Self::encrypt`];
    /// output bytes are identical either way.
    ///
    /// # Errors
    ///
    /// Fails if no key is installed.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not divide evenly into `ivs.len()` extents
    /// (an empty `ivs` requires an empty `data`).
    fn encrypt_extent(
        &mut self,
        soc: &mut Soc,
        ivs: &[[u8; 16]],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        if ivs.is_empty() {
            assert!(data.is_empty(), "extent data without IVs");
            return Ok(());
        }
        assert!(
            data.len().is_multiple_of(ivs.len()),
            "data does not divide into {} extents",
            ivs.len()
        );
        let unit = data.len() / ivs.len();
        for (iv, chunk) in ivs.iter().zip(data.chunks_exact_mut(unit)) {
            self.encrypt(soc, iv, chunk)?;
        }
        Ok(())
    }

    /// Decrypt a run of consecutive extents; the counterpart of
    /// [`Self::encrypt_extent`], with the same layout contract.
    ///
    /// # Errors
    ///
    /// Fails if no key is installed.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not divide evenly into `ivs.len()` extents.
    fn decrypt_extent(
        &mut self,
        soc: &mut Soc,
        ivs: &[[u8; 16]],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        if ivs.is_empty() {
            assert!(data.is_empty(), "extent data without IVs");
            return Ok(());
        }
        assert!(
            data.len().is_multiple_of(ivs.len()),
            "data does not divide into {} extents",
            ivs.len()
        );
        let unit = data.len() / ivs.len();
        for (iv, chunk) in ivs.iter().zip(data.chunks_exact_mut(unit)) {
            self.decrypt(soc, iv, chunk)?;
        }
        Ok(())
    }
}

/// The registry.
#[derive(Default)]
pub struct CryptoApi {
    engines: Vec<Box<dyn CipherEngine>>,
}

impl std::fmt::Debug for CryptoApi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CryptoApi")
            .field(
                "engines",
                &self
                    .engines
                    .iter()
                    .map(|e| (e.name(), e.priority()))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl CryptoApi {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        CryptoApi::default()
    }

    /// Register an engine.
    pub fn register(&mut self, engine: Box<dyn CipherEngine>) {
        self.engines.push(engine);
        self.engines
            .sort_by_key(|e| std::cmp::Reverse(e.priority()));
    }

    /// The preferred (highest-priority) engine.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoCipher`] if the registry is empty.
    pub fn preferred_mut(&mut self) -> Result<&mut (dyn CipherEngine + 'static), KernelError> {
        self.engines
            .first_mut()
            .map(|b| b.as_mut())
            .ok_or(KernelError::NoCipher)
    }

    /// The preferred engine, immutably.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoCipher`] if the registry is empty.
    pub fn preferred(&self) -> Result<&(dyn CipherEngine + 'static), KernelError> {
        self.engines
            .first()
            .map(|b| b.as_ref())
            .ok_or(KernelError::NoCipher)
    }

    /// Find an engine by name.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownCipher`] if no engine has that name.
    pub fn by_name_mut(
        &mut self,
        name: &str,
    ) -> Result<&mut (dyn CipherEngine + 'static), KernelError> {
        self.engines
            .iter_mut()
            .find(|e| e.name() == name)
            .map(|b| b.as_mut())
            .ok_or_else(|| KernelError::UnknownCipher(name.to_string()))
    }

    /// Names and priorities of all registered engines, highest first.
    #[must_use]
    pub fn listing(&self) -> Vec<(&'static str, i32)> {
        self.engines
            .iter()
            .map(|e| (e.name(), e.priority()))
            .collect()
    }
}

/// The kernel's default software AES ("generic AES" in the paper's
/// figures): fast, but its key and expanded key schedule live in kernel
/// heap — i.e., DRAM — where every attack in the threat model can reach
/// them.
pub struct GenericAesEngine {
    aes: Option<Aes>,
    /// Bitsliced backend sharing `aes`'s schedule, built once at
    /// key-install time ([`BitslicedAes::from_schedule`] reuses the
    /// already-expanded schedule — no second key expansion) so the
    /// per-op cost is pure block work. Drives the batched CBC-decrypt
    /// and extent paths; single-buffer CBC encryption is serially chained
    /// and stays on the scalar implementation, while multi-extent
    /// encryption fills the lanes with independent per-extent chains.
    bits: Option<BitslicedAes>,
    /// Selected page cipher mode; all three are implemented.
    mode: PageCipherMode,
    /// DRAM slot index for this engine's key material.
    slot: u64,
}

impl std::fmt::Debug for GenericAesEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenericAesEngine")
            .field("keyed", &self.aes.is_some())
            .finish_non_exhaustive()
    }
}

impl GenericAesEngine {
    /// Default priority of the in-kernel generic AES.
    pub const PRIORITY: i32 = 100;

    /// Create an unkeyed engine using DRAM key slot `slot`.
    #[must_use]
    pub fn new(slot: u64) -> Self {
        GenericAesEngine {
            aes: None,
            bits: None,
            mode: PageCipherMode::Cbc,
            slot,
        }
    }

    /// The DRAM address where this engine's key material lives — what a
    /// cold-boot attacker greps for.
    #[must_use]
    pub fn key_material_addr(&self) -> u64 {
        CRYPTO_KEYS_BASE + self.slot * 4096
    }

    fn cbc_cost_ns(soc: &Soc, bytes: usize) -> u64 {
        // Per 16-byte block: the arithmetic plus a handful of
        // cache-resident state touches.
        (bytes as u64 / 16) * (soc.costs.aes_block_compute_ns + 4 * soc.costs.cache_hit_ns)
    }

    fn ready(&self) -> Result<&Aes, KernelError> {
        self.aes.as_ref().ok_or(KernelError::NoKeyInstalled {
            engine: "aes-cbc-generic",
        })
    }

    fn ready_bits(&self) -> Result<&BitslicedAes, KernelError> {
        self.bits.as_ref().ok_or(KernelError::NoKeyInstalled {
            engine: "aes-cbc-generic",
        })
    }
}

impl CipherEngine for GenericAesEngine {
    fn name(&self) -> &'static str {
        "aes-cbc-generic"
    }

    fn priority(&self) -> i32 {
        Self::PRIORITY
    }

    fn key_residency(&self) -> KeyResidency {
        KeyResidency::Dram
    }

    fn set_key(&mut self, soc: &mut Soc, key: &[u8]) -> Result<(), KernelError> {
        let aes = Aes::new(key).map_err(KernelError::InvalidKey)?;
        // The generic implementation's key and schedule live in kernel
        // heap: write them to DRAM, uncached (kernel heap lines get
        // evicted in steady state; modelling them as DRAM-resident is
        // what gives cold boot its Frost-style key recovery).
        let addr = self.key_material_addr();
        soc.mem_write_uncached(addr, key)?;
        let mut sched = Vec::with_capacity(aes.schedule().enc_words().len() * 4);
        for w in aes.schedule().enc_words() {
            sched.extend_from_slice(&w.to_be_bytes());
        }
        soc.mem_write_uncached(addr + 64, &sched)?;
        self.bits = Some(BitslicedAes::from_schedule(aes.schedule()));
        self.aes = Some(aes);
        Ok(())
    }

    fn set_mode(&mut self, mode: PageCipherMode) -> Result<(), KernelError> {
        self.mode = mode;
        Ok(())
    }

    fn mode(&self) -> PageCipherMode {
        self.mode
    }

    fn encrypt(
        &mut self,
        soc: &mut Soc,
        iv: &[u8; 16],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        self.ready()?;
        match self.mode {
            // CBC encryption is serially chained; the scalar path is the
            // fastest single-chain implementation.
            PageCipherMode::Cbc => cbc_encrypt(self.ready()?, iv, data),
            // XTS/CTR are block-parallel in both directions: run the
            // batched bitsliced kernel at full width.
            PageCipherMode::Xts => {
                let bits = self.ready_bits()?;
                xts_encrypt(bits, bits, iv, data);
            }
            PageCipherMode::Ctr => ctr_crypt(self.ready_bits()?, iv, data),
        }
        soc.clock.advance(Self::cbc_cost_ns(soc, data.len()));
        Ok(())
    }

    fn decrypt(
        &mut self,
        soc: &mut Soc,
        iv: &[u8; 16],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        self.ready()?;
        match self.mode {
            PageCipherMode::Cbc => cbc_decrypt(self.ready_bits()?, iv, data),
            PageCipherMode::Xts => {
                let bits = self.ready_bits()?;
                xts_decrypt(bits, bits, iv, data);
            }
            PageCipherMode::Ctr => ctr_crypt(self.ready_bits()?, iv, data),
        }
        soc.clock.advance(Self::cbc_cost_ns(soc, data.len()));
        Ok(())
    }

    fn encrypt_extent(
        &mut self,
        soc: &mut Soc,
        ivs: &[[u8; 16]],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        if ivs.is_empty() {
            assert!(data.is_empty(), "extent data without IVs");
            return Ok(());
        }
        assert!(
            data.len().is_multiple_of(ivs.len()),
            "data does not divide into {} extents",
            ivs.len()
        );
        match self.mode {
            // CBC encryption is serially chained *within* each extent but
            // the extents are independent chains, so a multi-extent
            // request fills the bitsliced lanes with one chain each. A
            // single extent has nothing to batch against and stays on the
            // scalar chain loop.
            PageCipherMode::Cbc => {
                if ivs.len() == 1 {
                    cbc_encrypt(self.ready()?, &ivs[0], data);
                } else {
                    cbc_encrypt_extents(self.ready_bits()?, ivs, data);
                }
            }
            PageCipherMode::Xts => {
                let bits = self.ready_bits()?;
                xts_crypt_extents(bits, bits, true, ivs, data);
            }
            PageCipherMode::Ctr => ctr_crypt_extents(self.ready_bits()?, ivs, data),
        }
        soc.clock.advance(Self::cbc_cost_ns(soc, data.len()));
        Ok(())
    }

    fn decrypt_extent(
        &mut self,
        soc: &mut Soc,
        ivs: &[[u8; 16]],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        // One batched kernel stream across all extents: sub-batch units
        // (512-byte sectors are 32 blocks) no longer drain the 16-block
        // pipeline at every unit boundary.
        match self.mode {
            PageCipherMode::Cbc => cbc_decrypt_extents(self.ready_bits()?, ivs, data),
            PageCipherMode::Xts => {
                let bits = self.ready_bits()?;
                xts_crypt_extents(bits, bits, false, ivs, data);
            }
            PageCipherMode::Ctr => ctr_crypt_extents(self.ready_bits()?, ivs, data),
        }
        soc.clock.advance(Self::cbc_cost_ns(soc, data.len()));
        Ok(())
    }
}

/// The hardware crypto accelerator exposed as a kernel cipher. Slower
/// than the CPU for 4 KiB pages (Figure 11) and draws more energy
/// (Figure 12); its data path DMAs across the bus, so a bus monitor sees
/// every byte it processes. Implements all three page cipher modes —
/// the engine is a block-streaming device, the mode is descriptor
/// configuration — so the async read pipeline can queue CTR/XTS extents
/// against it.
pub struct AccelAesEngine {
    aes: Option<Aes>,
    bits: Option<BitslicedAes>,
    mode: PageCipherMode,
}

impl std::fmt::Debug for AccelAesEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccelAesEngine")
            .field("keyed", &self.aes.is_some())
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

impl AccelAesEngine {
    /// Default priority (below the generic software AES: the paper's
    /// Android stack only uses the engine when asked explicitly).
    pub const PRIORITY: i32 = 50;

    /// Create an unkeyed accelerator engine.
    #[must_use]
    pub fn new() -> Self {
        AccelAesEngine {
            aes: None,
            bits: None,
            mode: PageCipherMode::Cbc,
        }
    }

    fn ready(&self) -> Result<(&Aes, &BitslicedAes), KernelError> {
        match (&self.aes, &self.bits) {
            (Some(aes), Some(bits)) => Ok((aes, bits)),
            _ => Err(KernelError::NoKeyInstalled {
                engine: "aes-cbc-hw",
            }),
        }
    }

    /// Stage one accelerator operation: DMA the input through the bounce
    /// window (bus-visible), hit the `accel.dma` failpoint mid-transfer,
    /// transform `data` in place, DMA the result back, and charge the
    /// engine's calibrated duration.
    ///
    /// Timing note: the bounce-window DMA transactions advance the clock
    /// with generic bus costs; [`sentry_soc::clock::SimClock::set_now_ns`]
    /// then substitutes the accelerator's calibrated `op_duration_ns`
    /// (which already folds in descriptor setup and DMA streaming) for
    /// the whole operation, per the cost-substitution convention.
    fn run_op(
        &self,
        soc: &mut Soc,
        ivs: &[[u8; 16]],
        data: &mut [u8],
        encrypt: bool,
    ) -> Result<(), KernelError> {
        let (aes, bits) = self.ready()?;
        let t0 = soc.clock.now_ns();
        // Input DMA: the engine masters the bus and pulls the source
        // buffer through the bounce window. The window is a fixed-size
        // model; larger requests stream through it in passes, and one
        // pass is enough to make the traffic observable.
        let staged = data.len().min(crate::layout::ACCEL_DMA_SIZE as usize);
        soc.dma_write(
            crate::layout::ACCEL_DMA_CONTROLLER,
            crate::layout::ACCEL_DMA_BASE,
            &data[..staged],
        )?;
        // A power cut here — input staged, result not yet produced —
        // leaves only the staged input (ciphertext, on the read path) in
        // the window.
        soc.failpoint("accel.dma")?;
        match self.mode {
            PageCipherMode::Cbc => {
                // CBC chains serially within each extent; the engine
                // processes extents back-to-back.
                let unit = if ivs.is_empty() {
                    0
                } else {
                    data.len() / ivs.len()
                };
                for (iv, chunk) in ivs.iter().zip(data.chunks_exact_mut(unit.max(1))) {
                    if encrypt {
                        cbc_encrypt(aes, iv, chunk);
                    } else {
                        cbc_decrypt(bits, iv, chunk);
                    }
                }
            }
            PageCipherMode::Xts => xts_crypt_extents(bits, bits, encrypt, ivs, data),
            PageCipherMode::Ctr => ctr_crypt_extents(bits, ivs, data),
        }
        // Result DMA: written back only at operation completion — a kill
        // before this point never exposes the engine's output.
        soc.dma_write(
            crate::layout::ACCEL_DMA_CONTROLLER,
            crate::layout::ACCEL_DMA_BASE,
            &data[..staged],
        )?;
        soc.clock
            .set_now_ns(t0 + soc.accel.op_duration_ns(data.len() as u64));
        Ok(())
    }
}

impl Default for AccelAesEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CipherEngine for AccelAesEngine {
    fn name(&self) -> &'static str {
        "aes-cbc-hw"
    }

    fn priority(&self) -> i32 {
        Self::PRIORITY
    }

    fn key_residency(&self) -> KeyResidency {
        KeyResidency::AccelRegisters
    }

    fn set_key(&mut self, _soc: &mut Soc, key: &[u8]) -> Result<(), KernelError> {
        let aes = Aes::new(key).map_err(KernelError::InvalidKey)?;
        self.bits = Some(BitslicedAes::from_schedule(aes.schedule()));
        self.aes = Some(aes);
        Ok(())
    }

    fn set_mode(&mut self, mode: PageCipherMode) -> Result<(), KernelError> {
        self.mode = mode;
        Ok(())
    }

    fn mode(&self) -> PageCipherMode {
        self.mode
    }

    fn encrypt(
        &mut self,
        soc: &mut Soc,
        iv: &[u8; 16],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        self.run_op(soc, std::slice::from_ref(iv), data, true)
    }

    fn decrypt(
        &mut self,
        soc: &mut Soc,
        iv: &[u8; 16],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        self.run_op(soc, std::slice::from_ref(iv), data, false)
    }

    fn encrypt_extent(
        &mut self,
        soc: &mut Soc,
        ivs: &[[u8; 16]],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        if ivs.is_empty() {
            assert!(data.is_empty(), "extent data without IVs");
            return Ok(());
        }
        assert!(
            data.len().is_multiple_of(ivs.len()),
            "data does not divide into {} extents",
            ivs.len()
        );
        // One descriptor for the whole run: a multi-sector request pays
        // setup once, not per 512-byte unit.
        self.run_op(soc, ivs, data, true)
    }

    fn decrypt_extent(
        &mut self,
        soc: &mut Soc,
        ivs: &[[u8; 16]],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        if ivs.is_empty() {
            assert!(data.is_empty(), "extent data without IVs");
            return Ok(());
        }
        assert!(
            data.len().is_multiple_of(ivs.len()),
            "data does not divide into {} extents",
            ivs.len()
        );
        self.run_op(soc, ivs, data, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_prefers_highest_priority() {
        let mut api = CryptoApi::new();
        api.register(Box::new(AccelAesEngine::new()));
        api.register(Box::new(GenericAesEngine::new(0)));
        assert_eq!(api.preferred().unwrap().name(), "aes-cbc-generic");
        assert_eq!(
            api.listing(),
            vec![("aes-cbc-generic", 100), ("aes-cbc-hw", 50)]
        );
    }

    #[test]
    fn by_name_finds_engines() {
        let mut api = CryptoApi::new();
        api.register(Box::new(GenericAesEngine::new(0)));
        assert!(api.by_name_mut("aes-cbc-generic").is_ok());
        assert!(matches!(
            api.by_name_mut("nope"),
            Err(KernelError::UnknownCipher(_))
        ));
    }

    #[test]
    fn generic_engine_roundtrips_and_leaks_key_to_dram() {
        let mut soc = Soc::tegra3_small();
        let mut eng = GenericAesEngine::new(0);
        let key = [0x42u8; 16];
        eng.set_key(&mut soc, &key).unwrap();

        let mut data = vec![7u8; 64];
        let iv = [1u8; 16];
        eng.encrypt(&mut soc, &iv, &mut data).unwrap();
        assert_ne!(data, vec![7u8; 64]);
        eng.decrypt(&mut soc, &iv, &mut data).unwrap();
        assert_eq!(data, vec![7u8; 64]);

        // The raw key is now in DRAM, where attacks can find it.
        let mut found = vec![0u8; 16];
        soc.dram.read(eng.key_material_addr(), &mut found);
        assert_eq!(found, key);
        assert_eq!(eng.key_residency(), KeyResidency::Dram);
    }

    #[test]
    fn extent_paths_match_per_unit_paths() {
        // The overridden (batched) extent methods and the default
        // per-unit loop must agree byte-for-byte, for both the generic
        // engine and the accelerator (single-descriptor extent override).
        let mut soc = Soc::tegra3_small();
        let key = [0x9Cu8; 32];
        let units = 8usize;
        let unit = 512usize;
        let ivs: Vec<[u8; 16]> = (0..units).map(|i| [i as u8 + 1; 16]).collect();
        let pt: Vec<u8> = (0..units * unit).map(|i| (i * 11) as u8).collect();

        let mut generic = GenericAesEngine::new(0);
        generic.set_key(&mut soc, &key).unwrap();
        let mut accel = AccelAesEngine::new();
        accel.set_key(&mut soc, &key).unwrap();

        let mut expect = pt.clone();
        for (iv, chunk) in ivs.iter().zip(expect.chunks_exact_mut(unit)) {
            generic.encrypt(&mut soc, iv, chunk).unwrap();
        }

        let mut got = pt.clone();
        generic.encrypt_extent(&mut soc, &ivs, &mut got).unwrap();
        assert_eq!(got, expect, "generic extent encrypt");
        generic.decrypt_extent(&mut soc, &ivs, &mut got).unwrap();
        assert_eq!(got, pt, "generic extent decrypt");

        let mut hw = expect.clone();
        accel.decrypt_extent(&mut soc, &ivs, &mut hw).unwrap();
        assert_eq!(hw, pt, "accel default extent decrypt");

        // Degenerate case.
        generic.encrypt_extent(&mut soc, &[], &mut []).unwrap();
    }

    #[test]
    fn generic_and_accel_engines_support_all_modes() {
        let mut soc = Soc::tegra3_small();
        let mut eng = GenericAesEngine::new(0);
        eng.set_key(&mut soc, &[0x31u8; 16]).unwrap();
        let iv = [0x77u8; 16];
        let pt: Vec<u8> = (0..4096).map(|i| (i * 3) as u8).collect();

        let mut per_mode = Vec::new();
        for mode in PageCipherMode::all() {
            eng.set_mode(mode).unwrap();
            assert_eq!(eng.mode(), mode);
            let mut data = pt.clone();
            eng.encrypt(&mut soc, &iv, &mut data).unwrap();
            assert_ne!(data, pt, "{mode} encrypt is not a noop");
            per_mode.push(data.clone());
            eng.decrypt(&mut soc, &iv, &mut data).unwrap();
            assert_eq!(data, pt, "{mode} round-trip");

            // Extent paths agree with the single-buffer path per unit.
            let ivs = [[1u8; 16], [2u8; 16]];
            let mut ext: Vec<u8> = pt.iter().chain(pt.iter()).copied().collect();
            eng.encrypt_extent(&mut soc, &ivs, &mut ext).unwrap();
            let mut want = pt.clone();
            eng.encrypt(&mut soc, &ivs[1], &mut want).unwrap();
            assert_eq!(&ext[4096..], &want[..], "{mode} extent vs single");
            eng.decrypt_extent(&mut soc, &ivs, &mut ext).unwrap();
            assert!(
                ext.chunks(4096).all(|c| c == &pt[..]),
                "{mode} extent round-trip"
            );
        }
        // The three modes produce three different ciphertexts.
        assert_ne!(per_mode[0], per_mode[1]);
        assert_ne!(per_mode[0], per_mode[2]);
        assert_ne!(per_mode[1], per_mode[2]);

        // The accelerator implements the same three modes and agrees
        // byte-for-byte with the software engine (only the cost model
        // differs) — a prerequisite for routing CTR/XTS extents through
        // the async queue.
        let mut hw = AccelAesEngine::new();
        hw.set_key(&mut soc, &[0x31u8; 16]).unwrap();
        for (mode, expect) in PageCipherMode::all().iter().zip(&per_mode) {
            hw.set_mode(*mode).unwrap();
            assert_eq!(hw.mode(), *mode);
            let mut data = pt.clone();
            hw.encrypt(&mut soc, &iv, &mut data).unwrap();
            assert_eq!(&data, expect, "{mode} accel matches generic");
            hw.decrypt(&mut soc, &iv, &mut data).unwrap();
            assert_eq!(data, pt, "{mode} accel round-trip");
        }
    }

    #[test]
    fn accel_data_path_is_bus_visible() {
        // The accelerator is a bus master: every operation stages its
        // input and result through the DMA bounce window, so a bus
        // monitor sees the traffic. The generic engine computes in the
        // CPU's cache domain and emits none.
        let mut soc = Soc::nexus4_small();
        let mut hw = AccelAesEngine::new();
        hw.set_key(&mut soc, &[6u8; 16]).unwrap();
        hw.set_mode(PageCipherMode::Ctr).unwrap();
        let mut page = vec![0xABu8; 4096];

        let before = soc.bus.bytes_written();
        hw.decrypt(&mut soc, &[3u8; 16], &mut page).unwrap();
        let accel_traffic = soc.bus.bytes_written() - before;
        assert!(
            accel_traffic >= 2 * 4096,
            "input + result DMA, got {accel_traffic} bytes"
        );

        let mut sw = GenericAesEngine::new(0);
        sw.set_key(&mut soc, &[6u8; 16]).unwrap();
        sw.set_mode(PageCipherMode::Ctr).unwrap();
        let before = soc.bus.bytes_written();
        sw.decrypt(&mut soc, &[3u8; 16], &mut page).unwrap();
        assert_eq!(
            soc.bus.bytes_written(),
            before,
            "generic path is bus-silent"
        );
    }

    #[test]
    fn encrypt_without_key_fails() {
        let mut soc = Soc::tegra3_small();
        let mut eng = GenericAesEngine::new(0);
        let mut data = vec![0u8; 16];
        assert!(eng.encrypt(&mut soc, &[0u8; 16], &mut data).is_err());
    }

    #[test]
    fn accel_engine_is_slower_per_page_than_generic() {
        let mut soc = Soc::nexus4_small();
        let mut hw = AccelAesEngine::new();
        let mut sw = GenericAesEngine::new(1);
        hw.set_key(&mut soc, &[1u8; 16]).unwrap();
        sw.set_key(&mut soc, &[1u8; 16]).unwrap();
        let mut page = vec![0u8; 4096];
        let iv = [0u8; 16];

        let t0 = soc.clock.now_ns();
        sw.encrypt(&mut soc, &iv, &mut page).unwrap();
        let sw_ns = soc.clock.now_ns() - t0;

        let t0 = soc.clock.now_ns();
        hw.encrypt(&mut soc, &iv, &mut page).unwrap();
        let hw_ns = soc.clock.now_ns() - t0;

        assert!(
            hw_ns > 2 * sw_ns,
            "hw {hw_ns} ns should be much slower than sw {sw_ns} ns on 4 KiB pages"
        );
    }
}
