//! The freed-page zeroing kernel thread.
//!
//! "Linux has a kernel thread whose job is to zero-out these freed pages,
//! \[but\] there is no guarantee when this is done" (§7). Sentry closes the
//! resulting window by *waiting for the thread to drain* before declaring
//! the screen locked. The paper measured the thread at 4.014 GB/s with an
//! energy cost of 2.8 µJ/MB on the Nexus 4 — negligible, which is the
//! point of the measurement.

use crate::error::KernelError;
use crate::frames::FrameAllocator;
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::Soc;

/// Statistics of the zeroing thread.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ZeroStats {
    /// Bytes zeroed so far.
    pub bytes: u64,
    /// Simulated time spent zeroing, nanoseconds.
    pub ns: u64,
    /// Energy spent zeroing, joules (2.8 µJ/MB).
    pub joules: f64,
}

/// The zeroing thread.
#[derive(Debug, Clone, Default)]
pub struct ZeroThread {
    /// Cumulative statistics.
    pub stats: ZeroStats,
}

/// Energy cost of zeroing, joules per byte (2.8 µJ/MB, §7).
pub const ZERO_J_PER_BYTE: f64 = 2.8e-6 / (1024.0 * 1024.0);

impl ZeroThread {
    /// A fresh thread.
    #[must_use]
    pub fn new() -> Self {
        ZeroThread::default()
    }

    /// Zero one dirty frame, if any. Returns whether a frame was
    /// processed.
    ///
    /// The zeroes are written through the cache (so stale dirty lines
    /// cannot later overwrite them), but the *time* charged is the
    /// calibrated 4.014 GB/s rate rather than the per-line simulation
    /// cost — see [`sentry_soc::SimClock::set_now_ns`].
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn step(
        &mut self,
        frames: &mut FrameAllocator,
        soc: &mut Soc,
    ) -> Result<bool, KernelError> {
        let Some(frame) = frames.pop_dirty() else {
            return Ok(false);
        };
        let t0 = soc.clock.now_ns();
        soc.mem_write(frame, &[0u8; PAGE_SIZE as usize])?;
        // Substitute the calibrated end-to-end rate for the per-access
        // charges.
        let charged = soc.costs.zeroing_ns(PAGE_SIZE);
        soc.clock.set_now_ns(t0 + charged);
        frames.push_clean(frame);
        self.stats.bytes += PAGE_SIZE;
        self.stats.ns += charged;
        self.stats.joules += PAGE_SIZE as f64 * ZERO_J_PER_BYTE;
        Ok(true)
    }

    /// Zero *all* dirty frames — the barrier Sentry's lock path runs
    /// before declaring the device locked. Returns the simulated time the
    /// drain took.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn drain(
        &mut self,
        frames: &mut FrameAllocator,
        soc: &mut Soc,
    ) -> Result<u64, KernelError> {
        let t0 = soc.clock.now_ns();
        while self.step(frames, soc)? {}
        Ok(soc.clock.now_ns() - t0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentry_soc::addr::DRAM_BASE;

    #[test]
    fn zeroes_frames_and_returns_them_to_service() {
        let mut soc = Soc::tegra3_small();
        let mut frames = FrameAllocator::new(64 << 20);
        let mut zt = ZeroThread::new();

        let frame = frames.alloc().unwrap();
        soc.mem_write(frame, b"residual secret").unwrap();
        frames.free(frame);
        assert_eq!(frames.dirty_count(), 1);

        assert!(zt.step(&mut frames, &mut soc).unwrap());
        assert_eq!(frames.dirty_count(), 0);
        let mut buf = [0u8; 15];
        soc.mem_read(frame, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 15]);
        assert!(!zt.step(&mut frames, &mut soc).unwrap(), "queue is empty");
    }

    #[test]
    fn drain_rate_matches_calibration() {
        let mut soc = Soc::tegra3_small();
        let mut frames = FrameAllocator::new(64 << 20);
        let mut zt = ZeroThread::new();
        let n = 256u64; // 1 MiB
        for _ in 0..n {
            let f = frames.alloc().unwrap();
            frames.free(f);
        }
        let ns = zt.drain(&mut frames, &mut soc).unwrap();
        let gb_per_sec = (n * PAGE_SIZE) as f64 / (ns as f64 / 1e9) / 1e9;
        // Tegra cost model zeroes at 2 GB/s.
        assert!((1.8..2.2).contains(&gb_per_sec), "rate {gb_per_sec} GB/s");
    }

    #[test]
    fn energy_accounting_matches_paper_constant() {
        let mut soc = Soc::tegra3_small();
        let mut frames = FrameAllocator::new(64 << 20);
        let mut zt = ZeroThread::new();
        for _ in 0..256 {
            let f = frames.alloc().unwrap();
            frames.free(f);
        }
        zt.drain(&mut frames, &mut soc).unwrap();
        // 1 MiB at 2.8 µJ/MB.
        assert!((zt.stats.joules - 2.8e-6).abs() < 1e-9);
        let _ = DRAM_BASE;
    }
}
