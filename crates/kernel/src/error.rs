//! Kernel error types.

use crate::fault::PageFault;
use sentry_crypto::KeyError;
use sentry_soc::SocError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the kernel model.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// A memory access trapped; the pager must resolve this fault and
    /// the caller retry.
    Fault(PageFault),
    /// A hardware-level error from the SoC.
    Soc(SocError),
    /// The user frame pool is exhausted.
    OutOfMemory,
    /// No such process.
    UnknownPid(u32),
    /// No cipher with the requested name is registered.
    UnknownCipher(String),
    /// No cipher is registered at all.
    NoCipher,
    /// A cipher engine was handed a key it cannot use.
    InvalidKey(KeyError),
    /// A cipher engine was asked to operate before a key was installed.
    NoKeyInstalled {
        /// Name of the engine that refused.
        engine: &'static str,
    },
    /// A cipher engine was asked to switch to a page cipher mode it does
    /// not implement.
    UnsupportedCipherMode {
        /// Name of the engine that refused.
        engine: &'static str,
        /// Name of the requested mode.
        mode: &'static str,
    },
    /// A block request fell outside the device.
    BlockOutOfRange {
        /// The offending sector.
        sector: u64,
    },
    /// A dm-crypt sector read returned ciphertext whose MAC does not
    /// match the tag recorded when the sector was written: the device
    /// (or the DMA path to it) returned tampered or spliced data.
    SectorTamper {
        /// The offending sector.
        sector: u64,
        /// Tag recorded at write time.
        tag_expected: [u8; 8],
        /// MAC of the ciphertext actually read.
        tag_got: [u8; 8],
    },
    /// No such file in the VFS.
    NoSuchFile(String),
    /// A file operation ran past the end of the file.
    FileBounds {
        /// File name.
        name: String,
        /// Requested end offset.
        end: u64,
        /// Actual file size.
        size: u64,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Fault(fault) => write!(f, "page fault: {fault}"),
            KernelError::Soc(e) => write!(f, "soc error: {e}"),
            KernelError::OutOfMemory => write!(f, "out of physical frames"),
            KernelError::UnknownPid(pid) => write!(f, "no process with pid {pid}"),
            KernelError::UnknownCipher(name) => write!(f, "no cipher named {name:?}"),
            KernelError::NoCipher => write!(f, "no cipher registered"),
            KernelError::InvalidKey(_) => write!(f, "cipher engine rejected the key"),
            KernelError::NoKeyInstalled { engine } => {
                write!(f, "cipher engine {engine:?} has no key installed")
            }
            KernelError::UnsupportedCipherMode { engine, mode } => {
                write!(f, "cipher engine {engine:?} does not support mode {mode:?}")
            }
            KernelError::BlockOutOfRange { sector } => {
                write!(f, "sector {sector} outside block device")
            }
            KernelError::SectorTamper {
                sector,
                tag_expected,
                tag_got,
            } => write!(
                f,
                "sector {sector} failed integrity check: \
                 expected tag {tag_expected:02x?}, got {tag_got:02x?}"
            ),
            KernelError::NoSuchFile(name) => write!(f, "no file named {name:?}"),
            KernelError::FileBounds { name, end, size } => {
                write!(f, "access to {end} past end of {name:?} ({size} bytes)")
            }
        }
    }
}

impl Error for KernelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KernelError::Soc(e) => Some(e),
            KernelError::InvalidKey(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KeyError> for KernelError {
    fn from(e: KeyError) -> Self {
        KernelError::InvalidKey(e)
    }
}

impl From<SocError> for KernelError {
    fn from(e: SocError) -> Self {
        KernelError::Soc(e)
    }
}

impl From<PageFault> for KernelError {
    fn from(f: PageFault) -> Self {
        KernelError::Fault(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::AccessKind;

    #[test]
    fn conversions_and_display() {
        let f = PageFault {
            pid: 3,
            vpn: 7,
            kind: AccessKind::Read,
        };
        let e: KernelError = f.clone().into();
        assert!(e.to_string().contains("page fault"));
        let e: KernelError = SocError::CacheLockingUnavailable.into();
        assert!(e.to_string().contains("soc error"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn key_errors_convert_and_chain() {
        let e: KernelError = KeyError::InvalidLength(7).into();
        assert!(matches!(e, KernelError::InvalidKey(_)));
        let src = std::error::Error::source(&e).expect("source chains to the key error");
        assert!(src.to_string().contains('7'));

        let e = KernelError::NoKeyInstalled {
            engine: "aes-cbc-hw",
        };
        assert!(e.to_string().contains("aes-cbc-hw"));
    }
}
