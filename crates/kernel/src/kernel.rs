//! The kernel façade: processes, virtual memory, and the fault path.

use crate::crypto_api::{AccelAesEngine, CryptoApi, GenericAesEngine};
use crate::error::KernelError;
use crate::fault::{AccessKind, PageFault};
use crate::frames::FrameAllocator;
use crate::layout::kernel_stack_for;
use crate::pagetable::{Backing, Pte};
use crate::process::{Pid, Process};
use crate::sched::Scheduler;
use crate::zero_thread::ZeroThread;
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::{Platform, Soc};
use std::collections::BTreeMap;

/// The assembled kernel.
#[derive(Debug)]
pub struct Kernel {
    /// The underlying SoC.
    pub soc: Soc,
    /// Process table.
    pub procs: BTreeMap<Pid, Process>,
    /// Physical frame allocator.
    pub frames: FrameAllocator,
    /// The cipher registry.
    pub crypto: CryptoApi,
    /// The freed-page zeroing thread.
    pub zero_thread: ZeroThread,
    /// The scheduler.
    pub sched: Scheduler,
    /// Frames mapped into more than one address space: frame base →
    /// every `(pid, vpn)` that maps it. Sentry's lock path consults this
    /// to apply the §7 shared-page policy (and to encrypt each shared
    /// frame exactly once).
    pub shared_frames: BTreeMap<u64, Vec<(Pid, u64)>>,
    next_pid: Pid,
}

impl Kernel {
    /// Boot a kernel on `soc`. Registers the platform's stock ciphers:
    /// the generic software AES everywhere, plus the hardware engine on
    /// the Nexus 4.
    #[must_use]
    pub fn new(soc: Soc) -> Self {
        let mut crypto = CryptoApi::new();
        crypto.register(Box::new(GenericAesEngine::new(0)));
        if soc.platform == Platform::Nexus4 {
            crypto.register(Box::new(AccelAesEngine::new()));
        }
        let frames = FrameAllocator::new(soc.dram.size());
        Kernel {
            soc,
            procs: BTreeMap::new(),
            frames,
            crypto,
            zero_thread: ZeroThread::new(),
            sched: Scheduler::new(),
            shared_frames: BTreeMap::new(),
            next_pid: 1,
        }
    }

    /// Spawn a process with an empty address space.
    pub fn spawn(&mut self, name: impl Into<String>) -> Pid {
        let pid = self.next_pid;
        self.next_pid += 1;
        let proc = Process::new(pid, name, kernel_stack_for(pid));
        self.procs.insert(pid, proc);
        self.sched.admit(pid);
        pid
    }

    /// Tear down a process: unmap its whole address space, return
    /// DRAM frames to the dirty queue (they stay there until the
    /// zeroing thread scrubs them, §7), and drop the pid from the
    /// scheduler and the shared-frame registry. A shared frame is
    /// freed only when its last mapper exits. On-SoC backings are
    /// skipped — the caller (Sentry's teardown path) releases those
    /// through the pager before calling `exit`.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownPid`].
    pub fn exit(&mut self, pid: Pid) -> Result<(), KernelError> {
        let proc = self
            .procs
            .remove(&pid)
            .ok_or(KernelError::UnknownPid(pid))?;
        for (_vpn, pte) in proc.page_table.iter() {
            let frame = match pte.backing {
                Backing::Dram(f) => f,
                // An on-SoC page's slot is the pager's to reclaim, but
                // its DRAM home frame dies with the process.
                Backing::OnSoc(_) => match pte.home_frame {
                    Some(f) => f,
                    None => continue,
                },
            };
            match self.shared_frames.get_mut(&frame) {
                Some(sharers) => {
                    sharers.retain(|&(p, _)| p != pid);
                    if sharers.is_empty() {
                        self.shared_frames.remove(&frame);
                        self.frames.free(frame);
                    }
                }
                None => self.frames.free(frame),
            }
        }
        self.sched.remove(pid);
        Ok(())
    }

    /// Borrow a process.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownPid`].
    pub fn proc(&self, pid: Pid) -> Result<&Process, KernelError> {
        self.procs.get(&pid).ok_or(KernelError::UnknownPid(pid))
    }

    /// Borrow a process mutably.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownPid`].
    pub fn proc_mut(&mut self, pid: Pid) -> Result<&mut Process, KernelError> {
        self.procs.get_mut(&pid).ok_or(KernelError::UnknownPid(pid))
    }

    /// Map `count` anonymous pages starting at `vpn`, eagerly backed by
    /// zeroed DRAM frames.
    ///
    /// # Errors
    ///
    /// [`KernelError::OutOfMemory`] if the pool is exhausted.
    pub fn map_anon(&mut self, pid: Pid, vpn: u64, count: u64) -> Result<(), KernelError> {
        for i in 0..count {
            let frame = self.frames.alloc().ok_or(KernelError::OutOfMemory)?;
            let proc = self
                .procs
                .get_mut(&pid)
                .ok_or(KernelError::UnknownPid(pid))?;
            proc.page_table.map(vpn + i, Pte::resident(frame));
        }
        Ok(())
    }

    /// Unmap and free a page; the frame joins the dirty queue until the
    /// zeroing thread scrubs it (§7, Securing Freed Pages).
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownPid`]; unmapping a hole is a no-op.
    pub fn free_page(&mut self, pid: Pid, vpn: u64) -> Result<(), KernelError> {
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::UnknownPid(pid))?;
        if let Some(pte) = proc.page_table.unmap(vpn) {
            if let Backing::Dram(frame) = pte.backing {
                self.frames.free(frame);
            }
        }
        Ok(())
    }

    /// Translate `(pid, vaddr)` to a physical address, faulting if the
    /// page traps.
    ///
    /// # Errors
    ///
    /// [`KernelError::Fault`] for trapping pages,
    /// [`KernelError::UnknownPid`] for bad pids. Unmapped pages fault
    /// with the page's VPN (a segfault in a real kernel; here callers
    /// either pre-map or rely on [`Kernel::read`]/[`Kernel::write`]'s
    /// demand-zero path).
    pub fn translate(&self, pid: Pid, vaddr: u64, kind: AccessKind) -> Result<u64, KernelError> {
        let proc = self.proc(pid)?;
        let vpn = vaddr / PAGE_SIZE;
        match proc.page_table.get(vpn) {
            Some(pte) if !pte.traps() => {
                let base = match pte.backing {
                    Backing::Dram(f) | Backing::OnSoc(f) => f,
                };
                Ok(base + vaddr % PAGE_SIZE)
            }
            _ => Err(KernelError::Fault(PageFault { pid, vpn, kind })),
        }
    }

    /// Process read at a virtual address.
    ///
    /// Unmapped pages are demand-zero allocated (anonymous memory);
    /// trapping pages raise [`KernelError::Fault`] for the pager to
    /// resolve, after which the caller retries.
    ///
    /// # Errors
    ///
    /// [`KernelError::Fault`] and allocation/SoC errors.
    pub fn read(&mut self, pid: Pid, vaddr: u64, buf: &mut [u8]) -> Result<(), KernelError> {
        self.access(
            pid,
            vaddr,
            AccessKind::Read,
            buf.len(),
            |soc, phys, off, n, buf| {
                soc.mem_read(phys, &mut buf[off..off + n])
                    .map_err(Into::into)
            },
            buf,
        )
    }

    /// Process write at a virtual address. Marks touched pages dirty.
    ///
    /// # Errors
    ///
    /// [`KernelError::Fault`] and allocation/SoC errors.
    pub fn write(&mut self, pid: Pid, vaddr: u64, data: &[u8]) -> Result<(), KernelError> {
        // `access` wants a uniform buffer type; wrap the immutable data.
        let mut scratch = data.to_vec();
        self.access(
            pid,
            vaddr,
            AccessKind::Write,
            data.len(),
            |soc, phys, off, n, buf| soc.mem_write(phys, &buf[off..off + n]).map_err(Into::into),
            &mut scratch,
        )
    }

    fn access(
        &mut self,
        pid: Pid,
        vaddr: u64,
        kind: AccessKind,
        len: usize,
        op: impl Fn(&mut Soc, u64, usize, usize, &mut [u8]) -> Result<(), KernelError>,
        buf: &mut [u8],
    ) -> Result<(), KernelError> {
        let mut done = 0usize;
        while done < len {
            let cur = vaddr + done as u64;
            let vpn = cur / PAGE_SIZE;
            let page_off = cur % PAGE_SIZE;
            let n = ((PAGE_SIZE - page_off) as usize).min(len - done);

            self.ensure_mapped(pid, vpn)?;
            let proc = self
                .procs
                .get_mut(&pid)
                .ok_or(KernelError::UnknownPid(pid))?;
            let pte = proc
                .page_table
                .get_mut(vpn)
                .expect("ensure_mapped installed a PTE");
            if pte.traps() {
                proc.stats.faults += 1;
                return Err(KernelError::Fault(PageFault { pid, vpn, kind }));
            }
            let base = match pte.backing {
                Backing::Dram(f) | Backing::OnSoc(f) => f,
            };
            if kind == AccessKind::Write {
                pte.dirty = true;
            }
            op(&mut self.soc, base + page_off, done, n, buf)?;
            done += n;
        }
        Ok(())
    }

    /// Demand-zero allocate a PTE if the page is unmapped.
    fn ensure_mapped(&mut self, pid: Pid, vpn: u64) -> Result<(), KernelError> {
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or(KernelError::UnknownPid(pid))?;
        if proc.page_table.get(vpn).is_none() {
            let frame = self.frames.alloc().ok_or(KernelError::OutOfMemory)?;
            let proc = self.procs.get_mut(&pid).expect("checked above");
            proc.page_table.map(vpn, Pte::resident(frame));
            proc.stats.faults += 1;
            self.soc.clock.advance(self.soc.costs.page_fault_ns);
        }
        Ok(())
    }

    /// Map `owner`'s page at `owner_vpn` into `other`'s address space at
    /// `other_vpn`, sharing the same physical frame (shared memory /
    /// shared libraries). Both mappings are registered in
    /// [`Kernel::shared_frames`] so Sentry's lock walk can classify the
    /// page per §7 and encrypt it exactly once.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownPid`] for bad pids;
    /// [`KernelError::Fault`] if the owner's page is unmapped or not
    /// DRAM-resident.
    pub fn map_shared(
        &mut self,
        owner: Pid,
        owner_vpn: u64,
        other: Pid,
        other_vpn: u64,
    ) -> Result<(), KernelError> {
        self.ensure_mapped(owner, owner_vpn)?;
        let frame = {
            let proc = self.proc(owner)?;
            let pte = proc.page_table.get(owner_vpn).expect("ensured above");
            match pte.backing {
                Backing::Dram(f) => f,
                Backing::OnSoc(_) => {
                    return Err(KernelError::Fault(PageFault {
                        pid: owner,
                        vpn: owner_vpn,
                        kind: AccessKind::Read,
                    }))
                }
            }
        };
        // Check `other` exists before mutating anything.
        let _ = self.proc(other)?;
        let owner_pte = *self
            .proc(owner)?
            .page_table
            .get(owner_vpn)
            .expect("ensured");
        self.proc_mut(other)?.page_table.map(other_vpn, owner_pte);

        let sharers = self.shared_frames.entry(frame).or_default();
        for entry in [(owner, owner_vpn), (other, other_vpn)] {
            if !sharers.contains(&entry) {
                sharers.push(entry);
            }
        }
        Ok(())
    }

    /// Everyone mapping `frame`, if it is shared (two or more mappers).
    #[must_use]
    pub fn sharers_of(&self, frame: u64) -> Option<&[(Pid, u64)]> {
        self.shared_frames
            .get(&frame)
            .map(Vec::as_slice)
            .filter(|s| s.len() > 1)
    }

    /// Run the zeroing thread to completion — the freed-page barrier of
    /// Sentry's lock path. Returns the simulated drain time in
    /// nanoseconds.
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn drain_zero_thread(&mut self) -> Result<u64, KernelError> {
        let Kernel {
            soc,
            frames,
            zero_thread,
            ..
        } = self;
        zero_thread.drain(frames, soc)
    }

    /// Preempt the process `pid`: spill the CPU registers to its kernel
    /// stack in DRAM. This is the context-switch leak AES On SoC's IRQ
    /// discipline prevents.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from the stack spill.
    pub fn preempt(&mut self, pid: Pid) -> Result<bool, KernelError> {
        let stack = self.proc(pid)?.kernel_stack;
        self.soc.cpu.request_preemption();
        Ok(self.soc.deliver_preemption(stack)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagetable::Sharing;

    fn kernel() -> Kernel {
        Kernel::new(Soc::tegra3_small())
    }

    #[test]
    fn spawn_and_rw_roundtrip() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.write(pid, 0x1000, b"hello virtual world").unwrap();
        let mut buf = [0u8; 19];
        k.read(pid, 0x1000, &mut buf).unwrap();
        assert_eq!(&buf, b"hello virtual world");
    }

    #[test]
    fn demand_zero_pages_read_as_zero() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let mut buf = [0xAAu8; 64];
        k.read(pid, 0x7F000, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
        assert!(k.proc(pid).unwrap().stats.faults >= 1);
    }

    #[test]
    fn access_spans_page_boundaries() {
        let mut k = kernel();
        let pid = k.spawn("app");
        let data: Vec<u8> = (0..100).collect();
        k.write(pid, PAGE_SIZE - 50, &data).unwrap();
        let mut buf = vec![0u8; 100];
        k.read(pid, PAGE_SIZE - 50, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn cleared_young_bit_faults() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.write(pid, 0x1000, b"data").unwrap();
        k.proc_mut(pid)
            .unwrap()
            .page_table
            .get_mut(1)
            .unwrap()
            .young = false;
        let mut buf = [0u8; 4];
        let err = k.read(pid, 0x1000, &mut buf).unwrap_err();
        assert!(
            matches!(err, KernelError::Fault(PageFault { pid: p, vpn: 1, .. }) if p == pid),
            "got {err:?}"
        );
        // Pager resolves: set young again, retry succeeds.
        k.proc_mut(pid)
            .unwrap()
            .page_table
            .get_mut(1)
            .unwrap()
            .young = true;
        k.read(pid, 0x1000, &mut buf).unwrap();
        assert_eq!(&buf, b"data");
    }

    #[test]
    fn freed_pages_flow_through_zero_thread() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.write(pid, 0, b"secret").unwrap();
        let frame = match k.proc(pid).unwrap().page_table.get(0).unwrap().backing {
            Backing::Dram(f) => f,
            Backing::OnSoc(_) => unreachable!(),
        };
        k.free_page(pid, 0).unwrap();
        assert_eq!(k.frames.dirty_count(), 1);
        k.drain_zero_thread().unwrap();
        assert_eq!(k.frames.dirty_count(), 0);
        let mut buf = [0u8; 6];
        k.soc.mem_read(frame, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 6]);
    }

    #[test]
    fn translate_reports_physical_addresses() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.map_anon(pid, 4, 1).unwrap();
        let phys = k
            .translate(pid, 4 * PAGE_SIZE + 123, AccessKind::Read)
            .unwrap();
        assert_eq!(phys % PAGE_SIZE, 123);
        assert!(k.translate(pid, 99 * PAGE_SIZE, AccessKind::Read).is_err());
    }

    #[test]
    fn nexus_registers_hw_engine() {
        let k = Kernel::new(Soc::nexus4_small());
        let names: Vec<&str> = k.crypto.listing().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"aes-cbc-hw"));
        let k = Kernel::new(Soc::tegra3_small());
        let names: Vec<&str> = k.crypto.listing().iter().map(|(n, _)| *n).collect();
        assert!(!names.contains(&"aes-cbc-hw"));
    }

    #[test]
    fn preempt_spills_to_kernel_stack() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.soc.cpu.set_reg(2, 0xFEED_BEEF);
        assert!(k.preempt(pid).unwrap());
        let stack = k.proc(pid).unwrap().kernel_stack;
        let mut raw = [0u8; 4];
        k.soc.mem_read(stack + 8, &mut raw).unwrap();
        assert_eq!(u32::from_le_bytes(raw), 0xFEED_BEEF);
    }

    #[test]
    fn exit_frees_frames_and_respects_sharing() {
        let mut k = kernel();
        let a = k.spawn("a");
        let b = k.spawn("b");
        k.write(a, 0x1000, b"private").unwrap();
        k.map_shared(a, 9, b, 9).unwrap();
        let before = k.frames.dirty_count();
        k.exit(a).unwrap();
        // The private frame joins the dirty queue; the shared frame is
        // still pinned by `b`.
        assert_eq!(k.frames.dirty_count(), before + 1);
        assert!(k.proc(a).is_err());
        let mut buf = [0u8; 1];
        k.read(b, 9 * PAGE_SIZE, &mut buf).unwrap();
        k.exit(b).unwrap();
        assert!(k.shared_frames.is_empty());
        assert_eq!(k.frames.dirty_count(), before + 2);
    }

    #[test]
    fn sharing_default_is_private() {
        let mut k = kernel();
        let pid = k.spawn("app");
        k.map_anon(pid, 0, 1).unwrap();
        assert_eq!(
            k.proc(pid).unwrap().page_table.get(0).unwrap().sharing,
            Sharing::Private
        );
    }
}
