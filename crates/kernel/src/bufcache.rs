//! The file-system buffer cache and the storage volume stack.
//!
//! Figure 9's first observation is that "the presence of the file system
//! buffer cache masks some of the performance overhead" of dm-crypt:
//! cached reads never touch the cipher, so `randread` shows no crypto
//! cost until direct I/O bypasses the cache. Writes, in contrast, must
//! reach the (encrypted) device, so `randrw` pays for encryption even
//! with the cache on.
//!
//! [`Volume`] stacks the pieces the way the Linux block layer does:
//! buffer cache → optional dm-crypt → block device, with a direct-I/O
//! switch that bypasses the cache.

use crate::block::{BlockDevice, RamDisk, SECTOR_SIZE};
use crate::crypto_api::CryptoApi;
use crate::dmcrypt::DmCrypt;
use crate::error::KernelError;
use sentry_soc::Soc;
use std::collections::{BTreeMap, HashMap};

/// Cache block size: 4 KiB (8 sectors), matching the page cache.
pub const CACHE_BLOCK: usize = 4096;
const SECTORS_PER_BLOCK: u64 = (CACHE_BLOCK / SECTOR_SIZE) as u64;

/// An LRU cache of device blocks.
#[derive(Debug, Default)]
pub struct BufferCache {
    capacity: usize,
    blocks: HashMap<u64, Vec<u8>>,
    stamps: HashMap<u64, u64>,
    by_stamp: BTreeMap<u64, u64>,
    next_stamp: u64,
    /// Cache hits served.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl BufferCache {
    /// A cache holding at most `capacity` blocks.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BufferCache {
            capacity,
            ..BufferCache::default()
        }
    }

    fn touch(&mut self, block: u64) {
        if let Some(old) = self.stamps.insert(block, self.next_stamp) {
            self.by_stamp.remove(&old);
        }
        self.by_stamp.insert(self.next_stamp, block);
        self.next_stamp += 1;
    }

    /// Look up a block, refreshing its recency.
    pub fn get(&mut self, block: u64) -> Option<&Vec<u8>> {
        if self.blocks.contains_key(&block) {
            self.hits += 1;
            self.touch(block);
            self.blocks.get(&block)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Insert a block, evicting the least-recently-used one if full.
    pub fn insert(&mut self, block: u64, data: Vec<u8>) {
        debug_assert_eq!(data.len(), CACHE_BLOCK);
        if self.capacity == 0 {
            return;
        }
        if !self.blocks.contains_key(&block) && self.blocks.len() >= self.capacity {
            if let Some((&stamp, &victim)) = self.by_stamp.iter().next() {
                self.by_stamp.remove(&stamp);
                self.stamps.remove(&victim);
                self.blocks.remove(&victim);
            }
        }
        self.blocks.insert(block, data);
        self.touch(block);
    }

    /// Update a cached block's bytes if present (write-through update).
    pub fn update(&mut self, block: u64, offset: usize, data: &[u8]) {
        if let Some(cached) = self.blocks.get_mut(&block) {
            cached[offset..offset + data.len()].copy_from_slice(data);
        }
    }

    /// Discard everything.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.stamps.clear();
        self.by_stamp.clear();
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Crypto configuration of a volume.
// One `Volume` holds exactly one `VolumeCrypto`, so the size gap
// between the variants (the dm-crypt keystream cache is a few KiB)
// never multiplies across a collection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum VolumeCrypto {
    /// Plain device, no encryption ("No Crypto" bars of Figure 9).
    None,
    /// dm-crypt with the given mapping.
    DmCrypt(DmCrypt),
}

/// A mounted storage volume: buffer cache over (optionally) dm-crypt
/// over a RAM disk.
#[derive(Debug)]
pub struct Volume {
    /// The backing device.
    pub disk: RamDisk,
    /// Encryption layer.
    pub crypto: VolumeCrypto,
    /// The buffer cache.
    pub cache: BufferCache,
}

impl Volume {
    /// Create a volume of `sectors` sectors with a cache of
    /// `cache_blocks` blocks.
    #[must_use]
    pub fn new(sectors: u64, crypto: VolumeCrypto, cache_blocks: usize) -> Self {
        Volume {
            disk: RamDisk::new(sectors),
            crypto,
            cache: BufferCache::new(cache_blocks),
        }
    }

    /// Volume size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.disk.num_sectors() * SECTOR_SIZE as u64
    }

    /// Device-lock hook: zeroize any precomputed keystream held by the
    /// dm-crypt layer (key-equivalent material must not survive a lock
    /// transition) and drop the plaintext buffer cache.
    pub fn on_lock(&mut self) {
        if let VolumeCrypto::DmCrypt(dm) = &self.crypto {
            dm.zeroize_keystream();
        }
        self.cache.clear();
    }

    fn device_read(
        &mut self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        sector: u64,
        buf: &mut [u8],
    ) -> Result<(), KernelError> {
        // Split-borrow the disk and the crypto layer (dm-crypt keeps
        // interior state — sector tags, the keystream cache — that must
        // persist across calls, so no clone).
        let Volume { disk, crypto, .. } = self;
        match crypto {
            VolumeCrypto::None => disk.read_sectors(sector, buf, &mut soc.clock),
            VolumeCrypto::DmCrypt(dm) => dm.read(api, soc, disk, sector, buf),
        }
    }

    fn device_write(
        &mut self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        sector: u64,
        data: &[u8],
    ) -> Result<(), KernelError> {
        let Volume { disk, crypto, .. } = self;
        match crypto {
            VolumeCrypto::None => disk.write_sectors(sector, data, &mut soc.clock),
            VolumeCrypto::DmCrypt(dm) => dm.write(api, soc, disk, sector, data),
        }
    }

    /// Read `buf.len()` bytes at byte `offset`. With `direct_io` the
    /// buffer cache is bypassed entirely (the `O_DIRECT` runs of
    /// Figure 9).
    ///
    /// # Errors
    ///
    /// Propagates block/cipher errors; offsets must be block-aligned.
    ///
    /// # Panics
    ///
    /// Panics if `offset` or the length is not 4 KiB-aligned (filebench
    /// issues aligned I/O).
    pub fn read(
        &mut self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        offset: u64,
        buf: &mut [u8],
        direct_io: bool,
    ) -> Result<(), KernelError> {
        assert!(
            offset.is_multiple_of(CACHE_BLOCK as u64),
            "block-aligned I/O only"
        );
        assert!(
            buf.len().is_multiple_of(CACHE_BLOCK),
            "block-aligned I/O only"
        );
        for (i, chunk) in buf.chunks_exact_mut(CACHE_BLOCK).enumerate() {
            let block = offset / CACHE_BLOCK as u64 + i as u64;
            if !direct_io {
                if let Some(cached) = self.cache.get(block) {
                    chunk.copy_from_slice(cached);
                    // Serving from the page cache costs a memcpy.
                    soc.clock.advance(soc.costs.page_copy_ns);
                    continue;
                }
            }
            self.device_read(api, soc, block * SECTORS_PER_BLOCK, chunk)?;
            if !direct_io {
                self.cache.insert(block, chunk.to_vec());
            }
        }
        Ok(())
    }

    /// Write `data` at byte `offset`. Writes are write-through: they
    /// update the cache copy (if resident) *and* go to the device, so
    /// encrypted volumes pay the cipher cost on every write — the
    /// `randrw` behaviour of Figure 9.
    ///
    /// # Errors
    ///
    /// Propagates block/cipher errors.
    ///
    /// # Panics
    ///
    /// Panics on unaligned I/O.
    pub fn write(
        &mut self,
        api: &mut CryptoApi,
        soc: &mut Soc,
        offset: u64,
        data: &[u8],
        direct_io: bool,
    ) -> Result<(), KernelError> {
        assert!(
            offset.is_multiple_of(CACHE_BLOCK as u64),
            "block-aligned I/O only"
        );
        assert!(
            data.len().is_multiple_of(CACHE_BLOCK),
            "block-aligned I/O only"
        );
        for (i, chunk) in data.chunks_exact(CACHE_BLOCK).enumerate() {
            let block = offset / CACHE_BLOCK as u64 + i as u64;
            if !direct_io {
                // Write-allocate: written blocks are hot (this is what
                // lets the paper's file-creation phase warm the cache).
                self.cache.insert(block, chunk.to_vec());
            }
            self.device_write(api, soc, block * SECTORS_PER_BLOCK, chunk)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto_api::GenericAesEngine;

    fn api_and_soc() -> (CryptoApi, Soc) {
        let mut api = CryptoApi::new();
        api.register(Box::new(GenericAesEngine::new(0)));
        (api, Soc::tegra3_small())
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = BufferCache::new(2);
        c.insert(1, vec![1u8; CACHE_BLOCK]);
        c.insert(2, vec![2u8; CACHE_BLOCK]);
        assert!(c.get(1).is_some()); // 1 becomes MRU
        c.insert(3, vec![3u8; CACHE_BLOCK]);
        assert!(c.get(2).is_none(), "2 was LRU and must be evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn cached_reads_skip_the_device() {
        let (mut api, mut soc) = api_and_soc();
        let mut vol = Volume::new(1024, VolumeCrypto::None, 64);
        let data = vec![0x11u8; CACHE_BLOCK];
        vol.write(&mut api, &mut soc, 0, &data, false).unwrap();
        let mut buf = vec![0u8; CACHE_BLOCK];
        vol.read(&mut api, &mut soc, 0, &mut buf, false).unwrap(); // miss, fills
        let misses_before = vol.cache.misses;
        vol.read(&mut api, &mut soc, 0, &mut buf, false).unwrap(); // hit
        assert_eq!(vol.cache.misses, misses_before);
        assert!(vol.cache.hits >= 1);
        assert_eq!(buf, data);
    }

    #[test]
    fn direct_io_bypasses_cache() {
        let (mut api, mut soc) = api_and_soc();
        let mut vol = Volume::new(1024, VolumeCrypto::None, 64);
        let data = vec![0x22u8; CACHE_BLOCK];
        vol.write(&mut api, &mut soc, 4096, &data, true).unwrap();
        assert!(vol.cache.is_empty());
        let mut buf = vec![0u8; CACHE_BLOCK];
        vol.read(&mut api, &mut soc, 4096, &mut buf, true).unwrap();
        assert!(vol.cache.is_empty());
        assert_eq!(buf, data);
    }

    #[test]
    fn encrypted_volume_roundtrips_and_stores_ciphertext() {
        let (mut api, mut soc) = api_and_soc();
        let dm = DmCrypt::with_preferred_cipher();
        dm.set_key(&mut api, &mut soc, &[3u8; 16]).unwrap();
        let mut vol = Volume::new(1024, VolumeCrypto::DmCrypt(dm), 64);
        let data = vec![0x33u8; CACHE_BLOCK];
        vol.write(&mut api, &mut soc, 0, &data, false).unwrap();
        let mut buf = vec![0u8; CACHE_BLOCK];
        vol.read(&mut api, &mut soc, 0, &mut buf, false).unwrap();
        assert_eq!(buf, data);
        // Raw device holds ciphertext.
        let mut clock = sentry_soc::SimClock::new();
        let mut raw = vec![0u8; CACHE_BLOCK];
        vol.disk.read_sectors(0, &mut raw, &mut clock).unwrap();
        assert_ne!(raw, data);
    }

    #[test]
    fn cached_read_is_cheaper_than_encrypted_device_read() {
        let (mut api, mut soc) = api_and_soc();
        let dm = DmCrypt::with_preferred_cipher();
        dm.set_key(&mut api, &mut soc, &[3u8; 16]).unwrap();
        let mut vol = Volume::new(1024, VolumeCrypto::DmCrypt(dm), 64);
        let data = vec![0x44u8; CACHE_BLOCK];
        vol.write(&mut api, &mut soc, 0, &data, false).unwrap();
        let mut buf = vec![0u8; CACHE_BLOCK];

        let t0 = soc.clock.now_ns();
        vol.read(&mut api, &mut soc, 0, &mut buf, true).unwrap();
        let direct_ns = soc.clock.now_ns() - t0;

        vol.read(&mut api, &mut soc, 0, &mut buf, false).unwrap(); // fill cache
        let t0 = soc.clock.now_ns();
        vol.read(&mut api, &mut soc, 0, &mut buf, false).unwrap(); // hit
        let cached_ns = soc.clock.now_ns() - t0;

        assert!(
            cached_ns * 5 < direct_ns,
            "cached {cached_ns} ns vs direct {direct_ns} ns"
        );
    }
}
