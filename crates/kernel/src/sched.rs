//! A round-robin scheduler with an unschedulable queue.
//!
//! Sentry's Nexus 4 prototype "marks encrypted processes as
//! un-schedulable and places them in a special queue to prevent them from
//! running in the background while the phone remains locked" (§7). The
//! scheduler model keeps that mechanism explicit: processes whose
//! `schedulable` flag is cleared are skipped by [`Scheduler::next`], and
//! experiments can assert an encrypted app never got CPU time while
//! locked.

use crate::process::{Pid, Process};
use std::collections::{BTreeMap, VecDeque};

/// Round-robin over schedulable processes.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    queue: VecDeque<Pid>,
    /// Number of scheduling decisions taken.
    pub decisions: u64,
    /// Timer ticks delivered via [`Scheduler::tick`]. The tick is where
    /// periodic kernel work hangs — for Sentry, the background decrypt
    /// sweeper runs a budgeted step per tick.
    pub ticks: u64,
}

impl Scheduler {
    /// An empty scheduler.
    #[must_use]
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Add a process to the run queue.
    pub fn admit(&mut self, pid: Pid) {
        if !self.queue.contains(&pid) {
            self.queue.push_back(pid);
        }
    }

    /// Remove a process entirely (exit).
    pub fn remove(&mut self, pid: Pid) {
        self.queue.retain(|&p| p != pid);
    }

    /// Deliver one timer tick. Returns the tick count so periodic work
    /// (like the decrypt sweeper) can key off it.
    pub fn tick(&mut self) -> u64 {
        self.ticks += 1;
        self.ticks
    }

    /// Pick the next schedulable process, rotating the queue. Returns
    /// `None` if no admitted process is currently schedulable.
    pub fn next(&mut self, procs: &BTreeMap<Pid, Process>) -> Option<Pid> {
        self.decisions += 1;
        for _ in 0..self.queue.len() {
            let pid = self.queue.pop_front()?;
            self.queue.push_back(pid);
            if procs.get(&pid).is_some_and(|p| p.schedulable) {
                return Some(pid);
            }
        }
        None
    }

    /// Pids currently admitted (schedulable or not).
    #[must_use]
    pub fn admitted(&self) -> Vec<Pid> {
        self.queue.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn procs(specs: &[(Pid, bool)]) -> BTreeMap<Pid, Process> {
        specs
            .iter()
            .map(|&(pid, schedulable)| {
                let mut p = Process::new(pid, format!("p{pid}"), 0x8000_4000);
                p.schedulable = schedulable;
                (pid, p)
            })
            .collect()
    }

    #[test]
    fn round_robin_rotates() {
        let map = procs(&[(1, true), (2, true), (3, true)]);
        let mut s = Scheduler::new();
        for pid in [1, 2, 3] {
            s.admit(pid);
        }
        let picks: Vec<Pid> = (0..6).filter_map(|_| s.next(&map)).collect();
        assert_eq!(picks, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn unschedulable_processes_are_skipped() {
        let map = procs(&[(1, true), (2, false), (3, true)]);
        let mut s = Scheduler::new();
        for pid in [1, 2, 3] {
            s.admit(pid);
        }
        let picks: Vec<Pid> = (0..4).filter_map(|_| s.next(&map)).collect();
        assert!(!picks.contains(&2));
        assert_eq!(picks.len(), 4);
    }

    #[test]
    fn all_parked_means_no_pick() {
        let map = procs(&[(1, false), (2, false)]);
        let mut s = Scheduler::new();
        s.admit(1);
        s.admit(2);
        assert_eq!(s.next(&map), None);
    }

    #[test]
    fn ticks_count_monotonically() {
        let mut s = Scheduler::new();
        assert_eq!(s.tick(), 1);
        assert_eq!(s.tick(), 2);
        assert_eq!(s.ticks, 2);
    }

    #[test]
    fn admit_is_idempotent_and_remove_works() {
        let map = procs(&[(1, true)]);
        let mut s = Scheduler::new();
        s.admit(1);
        s.admit(1);
        assert_eq!(s.admitted(), vec![1]);
        s.remove(1);
        assert_eq!(s.next(&map), None);
    }
}
