//! Per-process page tables.
//!
//! Each PTE carries the bits Sentry's paging machinery manipulates:
//!
//! * `present`/`young` — clearing `young` arms the access trap (§5);
//! * `encrypted` — the page's bytes in DRAM are ciphertext under the
//!   volatile root key;
//! * `backing` — where the bytes physically live right now: a DRAM
//!   frame, or an on-SoC page (iRAM or a locked-L2 window address);
//! * `dma_region` — the page belongs to a GPU/I-O DMA region, which
//!   devices access by physical address without faulting, so Sentry must
//!   decrypt it eagerly on unlock (§7);
//! * `shared` — the page is shared with other processes; Sentry skips
//!   pages shared with any non-sensitive process (§7).

use std::collections::BTreeMap;

/// Virtual page number.
pub type Vpn = u64;

/// Where a page's bytes currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backing {
    /// A DRAM frame at this physical address.
    Dram(u64),
    /// An on-SoC page (iRAM address or locked-L2 window address).
    OnSoc(u64),
}

/// Sharing classification of a page (§7, "memory pages shared between
/// applications").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sharing {
    /// Private to this process.
    #[default]
    Private,
    /// Shared only among sensitive applications: still encrypted.
    SharedSensitiveOnly,
    /// Shared with at least one non-sensitive application: assumed
    /// non-secret, never encrypted.
    SharedWithNonSensitive,
}

/// One page table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// The page is mapped to physical storage.
    pub present: bool,
    /// The ARM young (accessed) bit. Cleared = next access traps.
    pub young: bool,
    /// DRAM bytes are ciphertext.
    pub encrypted: bool,
    /// The page has been written since it was last paged/encrypted.
    pub dirty: bool,
    /// Physical location.
    pub backing: Backing,
    /// Sharing classification.
    pub sharing: Sharing,
    /// Part of a device DMA region (eagerly decrypted on unlock).
    pub dma_region: bool,
    /// While the page is resident on-SoC, the DRAM frame that holds its
    /// (encrypted) home copy and receives it again on page-out.
    pub home_frame: Option<u64>,
    /// The lock-epoch counter mixed into the IV when the page's current
    /// ciphertext was produced (meaningful only while `encrypted`). Kept
    /// per-PTE because a page may stay ciphertext across an
    /// unlock→lock boundary and must decrypt under the IV it was
    /// actually encrypted with.
    pub crypt_epoch: u64,
}

impl Pte {
    /// A fresh, resident, trap-disarmed PTE over a DRAM frame.
    #[must_use]
    pub fn resident(frame: u64) -> Self {
        Pte {
            present: true,
            young: true,
            encrypted: false,
            dirty: false,
            backing: Backing::Dram(frame),
            sharing: Sharing::Private,
            dma_region: false,
            home_frame: None,
            crypt_epoch: 0,
        }
    }

    /// Does an access to this page trap?
    #[must_use]
    pub fn traps(&self) -> bool {
        !self.present || !self.young
    }
}

/// A sparse page table.
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    entries: BTreeMap<Vpn, Pte>,
}

impl PageTable {
    /// An empty page table.
    #[must_use]
    pub fn new() -> Self {
        PageTable::default()
    }

    /// Look up a PTE.
    #[must_use]
    pub fn get(&self, vpn: Vpn) -> Option<&Pte> {
        self.entries.get(&vpn)
    }

    /// Look up a PTE mutably.
    pub fn get_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        self.entries.get_mut(&vpn)
    }

    /// Install or replace a PTE.
    pub fn map(&mut self, vpn: Vpn, pte: Pte) {
        self.entries.insert(vpn, pte);
    }

    /// Remove a mapping, returning the old PTE.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        self.entries.remove(&vpn)
    }

    /// Number of mapped pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pages are mapped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(vpn, pte)` pairs in address order — the "walk the
    /// page tables of all processes marked sensitive" of §7.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, &Pte)> + '_ {
        self.entries.iter().map(|(&vpn, pte)| (vpn, pte))
    }

    /// Iterate mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Vpn, &mut Pte)> + '_ {
        self.entries.iter_mut().map(|(&vpn, pte)| (vpn, pte))
    }

    /// VPNs matching a predicate (collected to end borrows early).
    #[must_use]
    pub fn vpns_where(&self, pred: impl Fn(&Pte) -> bool) -> Vec<Vpn> {
        self.entries
            .iter()
            .filter(|(_, pte)| pred(pte))
            .map(|(&vpn, _)| vpn)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_get_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.is_empty());
        pt.map(5, Pte::resident(0x8000_0000));
        assert_eq!(pt.len(), 1);
        assert!(pt.get(5).unwrap().present);
        assert!(pt.get(6).is_none());
        let old = pt.unmap(5).unwrap();
        assert_eq!(old.backing, Backing::Dram(0x8000_0000));
        assert!(pt.is_empty());
    }

    #[test]
    fn traps_on_young_clear_or_not_present() {
        let mut pte = Pte::resident(0);
        assert!(!pte.traps());
        pte.young = false;
        assert!(pte.traps());
        pte.young = true;
        pte.present = false;
        assert!(pte.traps());
    }

    #[test]
    fn vpns_where_filters() {
        let mut pt = PageTable::new();
        for vpn in 0..10 {
            let mut pte = Pte::resident(vpn * 4096);
            pte.encrypted = vpn % 2 == 0;
            pt.map(vpn, pte);
        }
        let enc = pt.vpns_where(|p| p.encrypted);
        assert_eq!(enc, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn iteration_is_address_ordered() {
        let mut pt = PageTable::new();
        for vpn in [9u64, 1, 5] {
            pt.map(vpn, Pte::resident(0));
        }
        let order: Vec<Vpn> = pt.iter().map(|(v, _)| v).collect();
        assert_eq!(order, vec![1, 5, 9]);
    }
}
