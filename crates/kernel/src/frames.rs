//! The physical frame allocator and the freed-frame queue.
//!
//! Freed frames are *not* immediately reusable: they may contain secrets
//! of the sensitive application that freed them, and Linux only zeroes
//! them from a kernel thread "with no guarantee when this is done" (§7).
//! The allocator therefore keeps freed frames in a dirty queue that the
//! [`crate::zero_thread::ZeroThread`] drains; Sentry's lock path waits
//! for the drain before declaring the device locked.

use crate::layout::{user_pool_frames, USER_POOL_BASE};
use sentry_soc::addr::PAGE_SIZE;
use std::collections::VecDeque;

/// Allocates 4 KiB frames from the user pool.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    next_fresh: u64,
    limit: u64,
    free: Vec<u64>,
    freed_dirty: VecDeque<u64>,
}

impl FrameAllocator {
    /// An allocator over the user pool of a DRAM with `dram_size` bytes.
    #[must_use]
    pub fn new(dram_size: u64) -> Self {
        FrameAllocator {
            next_fresh: USER_POOL_BASE,
            limit: USER_POOL_BASE + user_pool_frames(dram_size) * PAGE_SIZE,
            free: Vec::new(),
            freed_dirty: VecDeque::new(),
        }
    }

    /// Allocate a frame, returning its physical base address.
    ///
    /// Fresh (never-used) frames and zeroed frames are both clean;
    /// frames in the dirty queue are *not* eligible until zeroed.
    #[must_use]
    pub fn alloc(&mut self) -> Option<u64> {
        if let Some(frame) = self.free.pop() {
            return Some(frame);
        }
        if self.next_fresh < self.limit {
            let frame = self.next_fresh;
            self.next_fresh += PAGE_SIZE;
            Some(frame)
        } else {
            None
        }
    }

    /// Free a frame: it joins the dirty queue until the zeroing thread
    /// scrubs it.
    pub fn free(&mut self, frame: u64) {
        debug_assert!(frame.is_multiple_of(PAGE_SIZE), "frames are page aligned");
        self.freed_dirty.push_back(frame);
    }

    /// Take the next dirty frame for scrubbing.
    #[must_use]
    pub fn pop_dirty(&mut self) -> Option<u64> {
        self.freed_dirty.pop_front()
    }

    /// Return a scrubbed frame to the clean free list.
    pub fn push_clean(&mut self, frame: u64) {
        self.free.push(frame);
    }

    /// Number of frames awaiting zeroing.
    #[must_use]
    pub fn dirty_count(&self) -> usize {
        self.freed_dirty.len()
    }

    /// Number of immediately allocatable frames (clean free list plus
    /// untouched pool).
    #[must_use]
    pub fn available(&self) -> u64 {
        self.free.len() as u64 + (self.limit - self.next_fresh) / PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_distinct_page_aligned_frames() {
        let mut a = FrameAllocator::new(64 << 20);
        let f1 = a.alloc().unwrap();
        let f2 = a.alloc().unwrap();
        assert_ne!(f1, f2);
        assert_eq!(f1 % PAGE_SIZE, 0);
        assert_eq!(f2 % PAGE_SIZE, 0);
        assert!(f1 >= USER_POOL_BASE);
    }

    #[test]
    fn freed_frames_are_not_reused_until_zeroed() {
        // Allocate the entire pool, free one frame, and verify it cannot
        // be re-allocated before scrubbing.
        let mut a = FrameAllocator::new(33 << 20); // 1 MiB pool = 256 frames
        let mut frames = Vec::new();
        while let Some(f) = a.alloc() {
            frames.push(f);
        }
        assert_eq!(frames.len(), 256);
        let victim = frames[0];
        a.free(victim);
        assert!(a.alloc().is_none(), "dirty frame must not be handed out");
        let dirty = a.pop_dirty().unwrap();
        assert_eq!(dirty, victim);
        a.push_clean(dirty);
        assert_eq!(a.alloc(), Some(victim));
    }

    #[test]
    fn available_counts_pool_and_free_list() {
        let mut a = FrameAllocator::new(33 << 20);
        assert_eq!(a.available(), 256);
        let f = a.alloc().unwrap();
        assert_eq!(a.available(), 255);
        a.free(f);
        assert_eq!(a.available(), 255, "dirty frames are unavailable");
        let d = a.pop_dirty().unwrap();
        a.push_clean(d);
        assert_eq!(a.available(), 256);
    }
}
