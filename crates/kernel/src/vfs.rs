//! A minimal extent-based file layer over a [`crate::bufcache::Volume`].
//!
//! Just enough of a file system for the filebench workloads of Figure 9:
//! named files allocated as contiguous block extents, with aligned read
//! and write operations that flow through the buffer cache / dm-crypt /
//! RAM-disk stack.

use crate::bufcache::{Volume, CACHE_BLOCK};
use crate::crypto_api::CryptoApi;
use crate::error::KernelError;
use sentry_soc::Soc;
use std::collections::BTreeMap;

/// A file: a contiguous extent of volume blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileExtent {
    /// First byte offset on the volume.
    pub start: u64,
    /// File size in bytes (block-aligned).
    pub size: u64,
}

/// The file layer.
#[derive(Debug)]
pub struct SimpleFs {
    files: BTreeMap<String, FileExtent>,
    next_free: u64,
}

impl SimpleFs {
    /// An empty file system.
    #[must_use]
    pub fn new() -> Self {
        SimpleFs {
            files: BTreeMap::new(),
            next_free: 0,
        }
    }

    /// Create a file of `size` bytes (rounded up to a block).
    ///
    /// # Errors
    ///
    /// [`KernelError::BlockOutOfRange`] if the volume is full.
    pub fn create(
        &mut self,
        vol: &Volume,
        name: impl Into<String>,
        size: u64,
    ) -> Result<(), KernelError> {
        let size = size.div_ceil(CACHE_BLOCK as u64) * CACHE_BLOCK as u64;
        if self.next_free + size > vol.size() {
            return Err(KernelError::BlockOutOfRange {
                sector: self.next_free / 512,
            });
        }
        self.files.insert(
            name.into(),
            FileExtent {
                start: self.next_free,
                size,
            },
        );
        self.next_free += size;
        Ok(())
    }

    /// Look up a file.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchFile`].
    pub fn stat(&self, name: &str) -> Result<&FileExtent, KernelError> {
        self.files
            .get(name)
            .ok_or_else(|| KernelError::NoSuchFile(name.to_string()))
    }

    fn span(&self, name: &str, offset: u64, len: usize) -> Result<u64, KernelError> {
        let f = self.stat(name)?;
        if offset + len as u64 > f.size {
            return Err(KernelError::FileBounds {
                name: name.to_string(),
                end: offset + len as u64,
                size: f.size,
            });
        }
        Ok(f.start + offset)
    }

    /// Read from a file at a block-aligned offset.
    ///
    /// # Errors
    ///
    /// File-bounds and volume errors.
    // The storage stack's components are threaded explicitly (no global
    // kernel state), which costs one argument over clippy's limit.
    #[allow(clippy::too_many_arguments)]
    pub fn read(
        &self,
        vol: &mut Volume,
        api: &mut CryptoApi,
        soc: &mut Soc,
        name: &str,
        offset: u64,
        buf: &mut [u8],
        direct_io: bool,
    ) -> Result<(), KernelError> {
        let vol_off = self.span(name, offset, buf.len())?;
        vol.read(api, soc, vol_off, buf, direct_io)
    }

    /// Write to a file at a block-aligned offset.
    ///
    /// # Errors
    ///
    /// File-bounds and volume errors.
    #[allow(clippy::too_many_arguments)]
    pub fn write(
        &self,
        vol: &mut Volume,
        api: &mut CryptoApi,
        soc: &mut Soc,
        name: &str,
        offset: u64,
        data: &[u8],
        direct_io: bool,
    ) -> Result<(), KernelError> {
        let vol_off = self.span(name, offset, data.len())?;
        vol.write(api, soc, vol_off, data, direct_io)
    }

    /// Names of all files.
    #[must_use]
    pub fn file_names(&self) -> Vec<&str> {
        self.files.keys().map(String::as_str).collect()
    }
}

impl Default for SimpleFs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bufcache::VolumeCrypto;
    use crate::crypto_api::GenericAesEngine;

    fn setup() -> (SimpleFs, Volume, CryptoApi, Soc) {
        let mut api = CryptoApi::new();
        api.register(Box::new(GenericAesEngine::new(0)));
        (
            SimpleFs::new(),
            Volume::new(4096, VolumeCrypto::None, 32),
            api,
            Soc::tegra3_small(),
        )
    }

    #[test]
    fn create_read_write() {
        let (mut fs, mut vol, mut api, mut soc) = setup();
        fs.create(&vol, "a.dat", 64 * 1024).unwrap();
        let data = vec![0xEEu8; 8192];
        fs.write(&mut vol, &mut api, &mut soc, "a.dat", 4096, &data, false)
            .unwrap();
        let mut buf = vec![0u8; 8192];
        fs.read(&mut vol, &mut api, &mut soc, "a.dat", 4096, &mut buf, false)
            .unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn files_do_not_overlap() {
        let (mut fs, vol, _, _) = setup();
        fs.create(&vol, "a", 4096).unwrap();
        fs.create(&vol, "b", 4096).unwrap();
        let a = fs.stat("a").unwrap().clone();
        let b = fs.stat("b").unwrap().clone();
        assert!(a.start + a.size <= b.start);
    }

    #[test]
    fn bounds_are_enforced() {
        let (mut fs, mut vol, mut api, mut soc) = setup();
        fs.create(&vol, "a", 4096).unwrap();
        let mut buf = vec![0u8; 8192];
        assert!(matches!(
            fs.read(&mut vol, &mut api, &mut soc, "a", 0, &mut buf, false),
            Err(KernelError::FileBounds { .. })
        ));
        assert!(matches!(
            fs.stat("missing"),
            Err(KernelError::NoSuchFile(_))
        ));
    }

    #[test]
    fn volume_capacity_is_enforced() {
        let (mut fs, vol, _, _) = setup();
        // Volume is 4096 sectors = 2 MiB.
        assert!(fs.create(&vol, "big", 3 << 20).is_err());
    }

    #[test]
    fn sizes_round_up_to_blocks() {
        let (mut fs, vol, _, _) = setup();
        fs.create(&vol, "odd", 100).unwrap();
        assert_eq!(fs.stat("odd").unwrap().size, 4096);
    }
}
