//! The energy and battery model, calibrated to the paper's Nexus 4
//! measurements.
//!
//! The paper's energy results are driven by a handful of measured
//! constants: per-byte energy of each AES variant (Figure 12), the
//! freed-page zeroing cost (§7), the full-memory-encryption strawman
//! (70 J per 2 GB, §7), and the device battery. Everything else —
//! Figure 5's per-app lock/unlock energy, the "2% of battery per day at
//! 150 unlocks" headline — is arithmetic over those constants and the
//! byte counts produced by the simulation. This crate holds the
//! constants and the arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Which AES implementation is doing the work (Figure 12's bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AesVariant {
    /// OpenSSL AES in user space.
    OpenSslUser,
    /// The kernel Crypto API's software AES — also the cost of AES On
    /// SoC, which the paper found indistinguishable (<1%).
    CryptoApi,
    /// The hardware crypto accelerator at 4 KiB-page granularity.
    HwAccel,
}

/// Calibrated energy constants.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Battery capacity in joules. Nexus 4: 2100 mAh at 3.8 V ≈ 28.7 kJ.
    pub battery_joules: f64,
    /// System energy per byte for user-space OpenSSL AES (µJ/B).
    pub uj_per_byte_openssl: f64,
    /// System energy per byte for the kernel Crypto API AES (µJ/B).
    pub uj_per_byte_cryptoapi: f64,
    /// System energy per byte for hardware-accelerated AES on 4 KiB
    /// pages (µJ/B) — *higher* than the CPU because the down-scaled
    /// engine keeps the system awake longer (Figure 12).
    pub uj_per_byte_hw: f64,
    /// Energy per megabyte of freed-page zeroing (µJ/MB, §7).
    pub uj_per_mb_zeroing: f64,
    /// Aggregate full-device encryption rate with all four cores and the
    /// accelerator working (bytes/s) — the strawman of §7 ("encrypting
    /// 2 GB … takes over a minute").
    pub full_encrypt_bytes_per_sec: f64,
    /// Energy to encrypt the full 2 GB once (J, §7: "over 70 Joules").
    pub full_encrypt_joules_per_2gb: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::nexus4()
    }
}

impl EnergyModel {
    /// The Nexus 4 calibration.
    #[must_use]
    pub fn nexus4() -> Self {
        EnergyModel {
            battery_joules: 2.1 * 3.8 * 3600.0, // 2100 mAh @ 3.8 V
            uj_per_byte_openssl: 0.030,
            uj_per_byte_cryptoapi: 0.040,
            uj_per_byte_hw: 0.110,
            uj_per_mb_zeroing: 2.8,
            full_encrypt_bytes_per_sec: 32.0e6,
            full_encrypt_joules_per_2gb: 70.0,
        }
    }

    /// Energy per byte of a variant, µJ.
    #[must_use]
    pub fn uj_per_byte(&self, variant: AesVariant) -> f64 {
        match variant {
            AesVariant::OpenSslUser => self.uj_per_byte_openssl,
            AesVariant::CryptoApi => self.uj_per_byte_cryptoapi,
            AesVariant::HwAccel => self.uj_per_byte_hw,
        }
    }

    /// Joules to encrypt or decrypt `bytes` with `variant`.
    #[must_use]
    pub fn crypt_joules(&self, variant: AesVariant, bytes: u64) -> f64 {
        bytes as f64 * self.uj_per_byte(variant) * 1e-6
    }

    /// Joules to zero `bytes` of freed pages.
    #[must_use]
    pub fn zeroing_joules(&self, bytes: u64) -> f64 {
        bytes as f64 / (1024.0 * 1024.0) * self.uj_per_mb_zeroing * 1e-6
    }

    /// Figure 5: energy of one lock/unlock cycle for an app that
    /// encrypts `lock_bytes` at lock and decrypts `unlock_bytes` at
    /// unlock, using `variant`.
    #[must_use]
    pub fn cycle_joules(
        &self,
        variant: AesVariant,
        lock_bytes: u64,
        unlock_bytes: u64,
    ) -> (f64, f64) {
        (
            self.crypt_joules(variant, lock_bytes),
            self.crypt_joules(variant, unlock_bytes),
        )
    }

    /// The paper's headline: daily battery fraction spent protecting an
    /// app, given lock/unlock byte counts and unlock cycles per day
    /// (150, citing Athonen & Moore).
    #[must_use]
    pub fn daily_battery_fraction(
        &self,
        variant: AesVariant,
        lock_bytes: u64,
        unlock_bytes: u64,
        cycles_per_day: u32,
    ) -> f64 {
        let (lock_j, unlock_j) = self.cycle_joules(variant, lock_bytes, unlock_bytes);
        f64::from(cycles_per_day) * (lock_j + unlock_j) / self.battery_joules
    }

    /// The §7 strawman: encrypt *all* of DRAM at every suspend.
    #[must_use]
    pub fn strawman(&self, dram_bytes: u64) -> Strawman {
        let joules =
            self.full_encrypt_joules_per_2gb * dram_bytes as f64 / (2.0 * (1u64 << 30) as f64);
        Strawman {
            seconds_per_encrypt: dram_bytes as f64 / self.full_encrypt_bytes_per_sec,
            joules_per_encrypt: joules,
            cycles_to_deplete: (self.battery_joules / joules) as u32,
        }
    }
}

/// Cost of the full-memory-encryption strawman.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Strawman {
    /// Wall-clock seconds per full encryption.
    pub seconds_per_encrypt: f64,
    /// Joules per full encryption.
    pub joules_per_encrypt: f64,
    /// Suspend/resume cycles until the battery is empty.
    pub cycles_to_deplete: u32,
}

/// Unlock cycles per day assumed by the paper (Athonen & Moore).
pub const CYCLES_PER_DAY: u32 = 150;

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn strawman_matches_paper_numbers() {
        // §7: 2 GB takes over a minute, over 70 J, and depletes the
        // battery after only ~410 cycles.
        let m = EnergyModel::nexus4();
        let s = m.strawman(2 << 30);
        assert!(s.seconds_per_encrypt > 60.0, "{}", s.seconds_per_encrypt);
        assert!((s.joules_per_encrypt - 70.0).abs() < 1.0);
        assert!(
            (380..=430).contains(&s.cycles_to_deplete),
            "{}",
            s.cycles_to_deplete
        );
    }

    #[test]
    fn maps_cycle_energy_matches_figure_5() {
        // Figure 5: Google Maps encrypts 48 MB on lock, decrypts 38 MB
        // on unlock, consuming "up to 2.3 Joules" for the lock side.
        let m = EnergyModel::nexus4();
        let (lock_j, unlock_j) = m.cycle_joules(AesVariant::CryptoApi, 48 * MB, 38 * MB);
        assert!((1.5..2.4).contains(&lock_j), "lock {lock_j} J");
        assert!(unlock_j < lock_j);
    }

    #[test]
    fn daily_fraction_is_about_two_percent_for_maps() {
        // "Sentry will consume daily about 2% of a device's battery life
        //  to protect an application assuming the user locks and unlocks
        //  a phone 150 times a day."
        let m = EnergyModel::nexus4();
        let frac =
            m.daily_battery_fraction(AesVariant::CryptoApi, 48 * MB, 38 * MB, CYCLES_PER_DAY);
        assert!((0.01..0.03).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn hw_is_least_efficient_per_byte() {
        // Figure 12's ordering.
        let m = EnergyModel::nexus4();
        assert!(m.uj_per_byte(AesVariant::OpenSslUser) < m.uj_per_byte(AesVariant::CryptoApi));
        assert!(m.uj_per_byte(AesVariant::CryptoApi) < m.uj_per_byte(AesVariant::HwAccel));
    }

    #[test]
    fn zeroing_is_negligible() {
        // §7: 2.8 µJ/MB — zeroing 100 MB of freed pages costs less than
        // a millijoule.
        let m = EnergyModel::nexus4();
        assert!(m.zeroing_joules(100 * MB) < 1e-3);
    }

    #[test]
    fn default_is_nexus4() {
        assert_eq!(EnergyModel::default(), EnergyModel::nexus4());
    }
}
