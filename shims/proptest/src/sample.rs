//! Sampling strategies (`proptest::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly select one of the given values.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from an empty list");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}
