//! The case-running machinery behind the [`proptest!`](crate::proptest)
//! macro: a deterministic RNG and a driver loop.

/// Runner configuration (the real crate's `ProptestConfig`, reduced to
/// the fields this workspace sets).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected ([`crate::prop_assume!`]) cases tolerated before
    /// the runner gives up.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message includes the generated inputs.
    Fail(String),
    /// The case was discarded by [`crate::prop_assume!`].
    Reject,
}

/// Deterministic splitmix64 generator. Seeded from the test name so each
/// property explores a distinct but reproducible sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a over the bytes).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift reduction; bias is irrelevant at test scale.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Drive one property: generate and run cases until `config.cases`
/// succeed, panicking on the first failure.
///
/// # Panics
///
/// Panics if a case fails or if rejects exceed the configured budget.
pub fn run_cases(
    name: &str,
    config: &Config,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest '{name}': too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed after {passed} passing case(s): {msg}")
            }
        }
    }
}
