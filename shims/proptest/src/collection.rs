//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of collection sizes. Constructed via `From` so call sites can
/// pass `1..24`, `16..=16`, or a single `usize`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with a size drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
