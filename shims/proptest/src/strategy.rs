//! Value-generation strategies: the composable core of the proptest API.

use crate::test_runner::TestRng;

/// A source of pseudo-random values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Build a union; weights must sum to a nonzero value.
    ///
    /// # Panics
    ///
    /// Panics if `variants` is empty or all weights are zero.
    #[must_use]
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = variants.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union {
            variants,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.variants {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights covered above")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// A strategy producing arbitrary values of this type.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy for any value of `T` (`any::<u8>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy behind [`any`] for primitive types.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }

        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
