//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the *subset* of the proptest API its tests actually use:
//! deterministic pseudo-random generation of values from composable
//! strategies, driven by the [`proptest!`] macro. There is no shrinking
//! and no persistence — a failing case panics with the generated inputs'
//! debug representation, and runs are reproducible because the RNG seed
//! is derived from the test name.

#![forbid(unsafe_code)]

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// `proptest::prelude::*`, mirroring the real crate's prelude surface.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop` module alias the real prelude exposes
    /// (`prop::sample::select`, `prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declare a block of property tests.
///
/// Supports the two forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u8..255, v in vec(any::<u8>(), 1..32)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(
                    stringify!($name),
                    &config,
                    |rng| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                        let _case_inputs: ::std::string::String = ::std::format!(
                            concat!("" $(, stringify!($arg), " = {:?}, ")*),
                            $(&$arg),*
                        );
                        let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                            (|| { $body ::std::result::Result::Ok(()) })();
                        if let ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) = result
                        {
                            return ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::Fail(::std::format!(
                                    "{msg}\n  inputs: {_case_inputs}"
                                )),
                            );
                        }
                        result
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

/// Assert a condition inside a property test; failure reports the
/// generated inputs instead of unwinding through the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)*), l, r
        );
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)*), l
        );
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Choose among several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
