//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the subset of the criterion API its benches use. Measurement
//! is deliberately simple but real: each benchmark runs a short warm-up,
//! then `sample_size` timed samples (batching iterations so a sample is
//! long enough for the OS clock), and reports the median time per
//! iteration plus throughput when configured. There are no plots, no
//! saved baselines, and no statistical regression tests.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Minimum wall-clock time of one timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(4);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), 20, None, &mut f);
        self
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// A parameterised benchmark name (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter into an id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.full.fmt(f)
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Configure derived throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.throughput,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Finish the group (report-only in this shim).
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    let mut per_iter: Vec<f64> = b.samples;
    if per_iter.is_empty() {
        println!("  {label:<44} (no measurement)");
        return;
    }
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let mut line = format!("  {label:<44} {:>12}/iter", fmt_ns(median));
    if let Some(t) = throughput {
        match t {
            Throughput::Bytes(bytes) => {
                let mbps = bytes as f64 / median * 1e9 / (1024.0 * 1024.0);
                line.push_str(&format!("  {mbps:>10.1} MiB/s"));
            }
            Throughput::Elements(n) => {
                let eps = n as f64 / median * 1e9;
                line.push_str(&format!("  {eps:>10.0} elem/s"));
            }
        }
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    /// Median inputs: measured nanoseconds per iteration, one per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, batching iterations per sample so each sample is
    /// long enough to measure reliably.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fill TARGET_SAMPLE?
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= TARGET_SAMPLE || batch >= 1 << 20 {
                break;
            }
            batch = if dt.is_zero() {
                batch * 16
            } else {
                (batch * 2).max(1)
            };
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Time `routine` on fresh state from `setup`; only the routine is
    /// timed, one iteration per sample.
    pub fn iter_with_setup<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
    ) {
        self.samples.clear();
        // One warm-up round.
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed().as_nanos() as f64);
        }
    }
}

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
