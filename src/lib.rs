//! Umbrella crate for the Sentry reproduction.
//!
//! Re-exports every sub-crate of the workspace so examples and downstream
//! users can depend on a single crate. See the individual crates for
//! full documentation:
//!
//! * [`soc`] — the simulated ARM SoC substrate (DRAM, iRAM, PL310 L2
//!   cache, bus, DMA, TrustZone, firmware).
//! * [`crypto`] — from-scratch AES with state-placement tracking.
//! * [`kernel`] — the minimal OS model (processes, paging, dm-crypt).
//! * [`core`] — Sentry itself: on-SoC storage, AES On SoC, encrypted
//!   DRAM, the lock/unlock lifecycle, and background execution.
//! * [`attacks`] — cold boot, bus monitoring, and DMA attacks.
//! * [`energy`] — the energy/battery model.
//! * [`workloads`] — app, filebench, and kernel-compile workload models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sentry_attacks as attacks;
pub use sentry_core as core;
pub use sentry_crypto as crypto;
pub use sentry_energy as energy;
pub use sentry_kernel as kernel;
pub use sentry_soc as soc;
pub use sentry_workloads as workloads;
