//! Property-based security invariants, exercised with randomized
//! workloads via proptest.
//!
//! The central invariant of the whole system: **while the device is
//! locked, no byte of a sensitive application's plaintext exists in
//! DRAM** — regardless of what the app did before locking or does in the
//! background after.

use proptest::collection::vec;
use proptest::prelude::*;
use sentry::core::{Sentry, SentryConfig};
use sentry::kernel::Kernel;
use sentry::soc::addr::{DRAM_BASE, PAGE_SIZE};
use sentry::soc::Soc;

/// A recognisable sentinel embedded in every page of app data, so DRAM
/// scans have something unambiguous to look for.
const SENTINEL: &[u8] = b"<<PLAINTEXT-SENTINEL>>";

fn scan_dram_for_sentinel(sentry: &mut Sentry) -> bool {
    sentry.kernel.soc.cache_maintenance_flush();
    sentry
        .kernel
        .soc
        .dram
        .iter_frames()
        .any(|(_, frame)| frame.windows(SENTINEL.len()).any(|w| w == SENTINEL))
}

fn page_with_sentinel(fill: u8) -> Vec<u8> {
    let mut page = vec![fill; PAGE_SIZE as usize];
    page[100..100 + SENTINEL.len()].copy_from_slice(SENTINEL);
    page
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Whatever mix of pages the app populated, locking removes all
    /// plaintext from DRAM and unlocking restores every byte.
    #[test]
    fn lock_always_scrubs_plaintext_from_dram(
        page_fills in vec(0u8..255, 1..24),
        slot_limit in 1usize..8,
    ) {
        let kernel = Kernel::new(Soc::tegra3_small());
        let config = SentryConfig::tegra3_locked_l2(2).with_slot_limit(slot_limit);
        let mut sentry = Sentry::new(kernel, config).unwrap();
        let pid = sentry.kernel.spawn("prop-app");
        sentry.mark_sensitive(pid).unwrap();

        for (vpn, &fill) in page_fills.iter().enumerate() {
            sentry.write(pid, vpn as u64 * PAGE_SIZE, &page_with_sentinel(fill)).unwrap();
        }

        sentry.on_lock().unwrap();
        prop_assert!(!scan_dram_for_sentinel(&mut sentry), "plaintext in DRAM while locked");

        sentry.on_unlock().unwrap();
        for (vpn, &fill) in page_fills.iter().enumerate() {
            let mut buf = vec![0u8; PAGE_SIZE as usize];
            sentry.read(pid, vpn as u64 * PAGE_SIZE, &mut buf).unwrap();
            prop_assert_eq!(&buf, &page_with_sentinel(fill));
        }
    }

    /// Background access patterns — random reads and writes at random
    /// offsets — never leak plaintext to DRAM and never corrupt data.
    #[test]
    fn background_paging_preserves_confidentiality_and_integrity(
        accesses in vec((0u64..12, 0u64..3000, any::<bool>()), 1..40),
        slot_limit in 1usize..6,
    ) {
        let kernel = Kernel::new(Soc::tegra3_small());
        let config = SentryConfig::tegra3_locked_l2(1).with_slot_limit(slot_limit);
        let mut sentry = Sentry::new(kernel, config).unwrap();
        let pid = sentry.kernel.spawn("bg-app");
        sentry.mark_sensitive(pid).unwrap();

        let mut shadow: Vec<Vec<u8>> = (0..12).map(|i| page_with_sentinel(i as u8)).collect();
        for (vpn, page) in shadow.iter().enumerate() {
            sentry.write(pid, vpn as u64 * PAGE_SIZE, page).unwrap();
        }
        sentry.on_lock().unwrap();

        for &(vpn, offset, is_write) in &accesses {
            let addr = vpn * PAGE_SIZE + offset;
            if is_write {
                let data = [vpn as u8, offset as u8, 0xEE];
                sentry.write(pid, addr, &data).unwrap();
                shadow[vpn as usize][offset as usize..offset as usize + 3]
                    .copy_from_slice(&data);
            } else {
                let mut buf = [0u8; 3];
                sentry.read(pid, addr, &mut buf).unwrap();
                prop_assert_eq!(
                    &buf[..],
                    &shadow[vpn as usize][offset as usize..offset as usize + 3]
                );
            }
        }

        prop_assert!(!scan_dram_for_sentinel(&mut sentry), "background work leaked plaintext");

        sentry.on_unlock().unwrap();
        for (vpn, page) in shadow.iter().enumerate() {
            let mut buf = vec![0u8; PAGE_SIZE as usize];
            sentry.read(pid, vpn as u64 * PAGE_SIZE, &mut buf).unwrap();
            prop_assert_eq!(&buf, page, "page {} corrupted", vpn);
        }
    }

    /// DMA can never read what Sentry put on the SoC, no matter where
    /// in physical memory the attacker points the controller.
    #[test]
    fn dma_never_sees_onsoc_plaintext(probe_offsets in vec(0u64..(48u64 << 20), 1..32)) {
        let kernel = Kernel::new(Soc::tegra3_small());
        let mut sentry = Sentry::new(kernel, SentryConfig::tegra3_locked_l2(2)).unwrap();
        let pid = sentry.kernel.spawn("app");
        sentry.mark_sensitive(pid).unwrap();
        sentry.write(pid, 0, &page_with_sentinel(7)).unwrap();
        sentry.on_lock().unwrap();
        // Touch it so the plaintext is resident on-SoC right now.
        let mut b = [0u8; 32];
        sentry.read(pid, 100, &mut b).unwrap();

        for &off in &probe_offsets {
            let addr = DRAM_BASE + (off & !0xFFF);
            if let Ok(bytes) = sentry.kernel.soc.dma_read(0, addr, 4096) {
                prop_assert!(
                    !bytes.windows(SENTINEL.len()).any(|w| w == SENTINEL),
                    "DMA read plaintext at {addr:#x}"
                );
            }
        }
    }
}

#[test]
fn sentinel_is_detectable_when_unprotected() {
    // Meta-test: the scan actually works (otherwise the properties
    // above would pass vacuously).
    let kernel = Kernel::new(Soc::tegra3_small());
    let mut sentry = Sentry::new(kernel, SentryConfig::tegra3_locked_l2(2)).unwrap();
    let pid = sentry.kernel.spawn("unprotected");
    sentry.write(pid, 0, &page_with_sentinel(1)).unwrap();
    assert!(scan_dram_for_sentinel(&mut sentry));
}
