//! Smoke tests asserting the qualitative shape of each reproduced
//! experiment — the same claims EXPERIMENTS.md records, enforced in CI.
//! (The per-figure quantitative checks live in the owning crates; this
//! file guards the cross-cutting conclusions.)

use sentry::attacks::coldboot::table2;
use sentry::attacks::matrix::{table3, StorageOption};
use sentry::energy::EnergyModel;
use sentry::workloads::kernelbuild::compile_minutes;
use sentry::workloads::{run_filebench, CryptoSetup, FilebenchSpec, Workload};

#[test]
fn table2_asymmetry_is_the_papers_core_observation() {
    // iRAM: survives warm reboot, dies on any power loss (firmware).
    // DRAM: survives short power loss, which is why it is attackable.
    let rows = table2(3, 7).unwrap();
    let (warm, reflash, reset2s) = (&rows[0], &rows[1], &rows[2]);
    assert!(warm.1 > 0.99 && warm.2 > 0.9);
    assert!(reflash.1 < 0.01 && reflash.2 > 0.9);
    assert!(reset2s.1 < 0.01 && reset2s.2 < 0.01);
}

#[test]
fn table3_every_onsoc_cell_is_safe_every_dram_cell_is_not() {
    let rows = table3().unwrap();
    assert_eq!(rows.len(), 9);
    for r in rows {
        if r.target == StorageOption::Dram.to_string() {
            assert!(r.recovered, "{}: DRAM must fall to {}", r.target, r.attack);
        } else {
            assert!(!r.recovered, "{}: must resist {}", r.target, r.attack);
        }
    }
}

#[test]
fn figure10_one_way_is_cheap_eight_ways_are_not() {
    let t0 = compile_minutes(0);
    assert!((compile_minutes(1) - t0) / t0 < 0.01);
    assert!((compile_minutes(8) - t0) / t0 > 0.3);
}

#[test]
fn figure9_crossover_cache_masks_reads_but_not_writes() {
    let cell = |w, d, c| {
        run_filebench(&FilebenchSpec::new(w, d), c)
            .unwrap()
            .mb_per_sec
    };
    // Cached reads: crypto is free.
    let read_none = cell(Workload::RandRead, false, CryptoSetup::NoCrypto);
    let read_aes = cell(Workload::RandRead, false, CryptoSetup::GenericAes);
    assert!(read_aes > 0.9 * read_none);
    // Direct reads: crypto dominates.
    let dread_none = cell(Workload::RandRead, true, CryptoSetup::NoCrypto);
    let dread_aes = cell(Workload::RandRead, true, CryptoSetup::GenericAes);
    assert!(dread_none > 4.0 * dread_aes);
    // Mixed: roughly the paper's factor of two.
    let rw_none = cell(Workload::RandRw, false, CryptoSetup::NoCrypto);
    let rw_aes = cell(Workload::RandRw, false, CryptoSetup::GenericAes);
    let factor = rw_none / rw_aes;
    assert!((1.5..3.2).contains(&factor), "factor {factor}");
}

#[test]
fn headline_sentry_beats_the_strawman_by_orders_of_magnitude() {
    // Strawman: 70 J/cycle, 410 cycles to flat. Sentry: ~2% per *day*.
    let m = EnergyModel::nexus4();
    let strawman = m.strawman(2 << 30);
    let strawman_daily = 150.0 * strawman.joules_per_encrypt / m.battery_joules;
    assert!(
        strawman_daily > 0.3,
        "strawman: {strawman_daily:.2} of battery/day"
    );
    let sentry_daily = m.daily_battery_fraction(
        sentry::energy::AesVariant::CryptoApi,
        48 << 20,
        38 << 20,
        150,
    );
    assert!(sentry_daily < 0.03);
    assert!(strawman_daily / sentry_daily > 10.0);
}
