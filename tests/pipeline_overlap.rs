//! Properties of the async crypt pipeline: overlap is a pure latency
//! optimisation — it must never change bytes, never serve a keystream
//! buffer twice, and never leave keystream recoverable from memory.

use proptest::collection::vec;
use proptest::prelude::*;
use sentry::attacks::coldboot::{dump_dram, dump_iram, search};
use sentry::crypto::pipeline::ctr_keystream;
use sentry::crypto::{BitslicedAes, KeystreamCache, PageCipherMode, PipelineConfig};
use sentry::kernel::block::{RamDisk, SECTOR_SIZE};
use sentry::kernel::crypto_api::{CryptoApi, GenericAesEngine};
use sentry::kernel::dmcrypt::DmCrypt;
use sentry::soc::accel::AccelPowerState;
use sentry::soc::addr::IRAM_BASE;
use sentry::soc::{FaultAction, FaultPlan, Soc};

const KEY: [u8; 16] = [0x6B; 16];
const VOLUME_SECTORS: u64 = 512;

/// A CTR-mode volume with `sectors` sectors of deterministic content.
fn volume(seed: u64, pipeline: bool) -> (CryptoApi, Soc, RamDisk, DmCrypt, Vec<u8>) {
    let mut api = CryptoApi::new();
    api.register(Box::new(GenericAesEngine::new(0)));
    api.preferred_mut()
        .unwrap()
        .set_mode(PageCipherMode::Ctr)
        .unwrap();
    let mut soc = Soc::tegra3_small();
    soc.accel.state = AccelPowerState::Awake;
    let dm = DmCrypt::with_preferred_cipher();
    if pipeline {
        dm.enable_pipeline(PipelineConfig::enabled());
    }
    dm.set_key(&mut api, &mut soc, &KEY).unwrap();
    let mut disk = RamDisk::new(VOLUME_SECTORS);
    let data: Vec<u8> = (0..VOLUME_SECTORS as usize * SECTOR_SIZE)
        .map(|i| (i as u64).wrapping_mul(seed | 1).wrapping_shr(3) as u8)
        .collect();
    dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
    (api, soc, disk, dm, data)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Any interleaving of read requests — arbitrary offsets, lengths,
    /// and repetition — returns byte-identical data on the overlapped
    /// path and the inline path. Repetition matters: a second read of a
    /// sector whose keystream was already consumed must recompute or
    /// route, never reuse (CTR keystream reuse would corrupt the bytes,
    /// so correctness here *is* the single-use proof on the data path).
    #[test]
    fn overlap_is_byte_identical_across_interleavings(
        seed in 1u64..u64::MAX,
        reqs in vec((0u64..VOLUME_SECTORS - 32, 1usize..32), 1..24),
    ) {
        let (mut api, mut soc, mut disk, dm, data) = volume(seed, true);
        for &(sector, nsect) in &reqs {
            let mut buf = vec![0u8; nsect * SECTOR_SIZE];
            dm.read(&mut api, &mut soc, &mut disk, sector, &mut buf).unwrap();
            let lo = sector as usize * SECTOR_SIZE;
            prop_assert_eq!(
                &buf[..],
                &data[lo..lo + nsect * SECTOR_SIZE],
                "sector {} x{}", sector, nsect
            );
        }
        let (stats, ks) = dm.pipeline_stats().unwrap();
        prop_assert!(ks.hits <= ks.precomputed, "{:?}", ks);
        prop_assert_eq!(ks.stale_epoch_denied, 0);
        prop_assert_eq!(stats.fallbacks(), stats.fallback_below_threshold,
            "only short miss runs may fall back on an awake CTR volume");
    }

    /// A power cut at any depth into the DMA staging sequence leaves no
    /// plaintext keystream (and no plaintext data) anywhere in DRAM or
    /// iRAM — the bounce window holds staged ciphertext only, and the
    /// keystream cache is on-SoC scratch that dies with power.
    #[test]
    fn kill_at_any_queue_depth_leaks_no_keystream(
        seed in 1u64..u64::MAX,
        kill_after in 0u64..6,
    ) {
        let (mut api, mut soc, mut disk, dm, _) = volume(seed, true);
        soc.failpoints.arm(FaultPlan::at_site(
            "accel.dma",
            kill_after,
            FaultAction::PowerCut { decay: None },
        ));
        let mut killed = false;
        for chunk in 0..8u64 {
            let mut buf = vec![0u8; 16 * SECTOR_SIZE];
            if dm.read(&mut api, &mut soc, &mut disk, chunk * 16, &mut buf).is_err() {
                killed = true;
                break;
            }
        }
        soc.failpoints.disarm();
        prop_assert!(killed, "the armed power cut must fire within the run");

        let mut dump = dump_dram(&mut soc);
        dump.push((IRAM_BASE, dump_iram(&soc)));
        let bits = BitslicedAes::new(&KEY).unwrap();
        for sector in 0..256u64 {
            let ks = ctr_keystream(&bits, &DmCrypt::sector_iv(sector), 64);
            prop_assert!(
                search(&dump, &ks[..32]).is_empty(),
                "keystream for sector {} found in the frozen image", sector
            );
        }
    }
}

/// The cache itself enforces single-use: a taken entry is gone, and a
/// stale-epoch take is zeroized and denied rather than served.
#[test]
fn keystream_cache_never_serves_twice() {
    let mut cache = KeystreamCache::new(SECTOR_SIZE, 8);
    let epoch = cache.epoch();
    cache.insert(7, vec![0xAB; SECTOR_SIZE]);
    assert!(cache.take(7, epoch).is_some());
    assert!(
        cache.take(7, epoch).is_none(),
        "single-use: entry must be consumed"
    );

    cache.insert(9, vec![0xCD; SECTOR_SIZE]);
    cache.rotate_epoch();
    assert!(
        cache.take(9, epoch).is_none(),
        "stale-epoch keystream must be denied, not served"
    );
    assert_eq!(cache.len(), 0, "rotation zeroizes and drops every entry");
}

/// Device lock zeroizes the resident keystream and rotates the epoch;
/// post-lock reads still decrypt correctly (recompute, never reuse).
#[test]
fn lock_zeroizes_and_reads_stay_correct() {
    let (mut api, mut soc, mut disk, dm, data) = volume(0x5EED, true);
    let mut buf = vec![0u8; 16 * SECTOR_SIZE];
    dm.read(&mut api, &mut soc, &mut disk, 0, &mut buf).unwrap();
    assert!(
        dm.keystream_resident() > 0,
        "lookahead must leave residents"
    );

    dm.zeroize_keystream();
    assert_eq!(dm.keystream_resident(), 0);

    dm.read(&mut api, &mut soc, &mut disk, 16, &mut buf)
        .unwrap();
    assert_eq!(&buf[..], &data[16 * SECTOR_SIZE..32 * SECTOR_SIZE]);
}
