//! Cross-crate cryptographic conformance: every AES path in the
//! workspace (fast, reference, tracked, the generic kernel engine, and
//! AES On SoC in both backends) must produce identical bytes.

use proptest::collection::vec;
use proptest::prelude::*;
use sentry::core::aes_onsoc::build_engine;
use sentry::core::config::OnSocBackend;
use sentry::core::onsoc::OnSocStore;
use sentry::crypto::modes::{
    cbc_decrypt, cbc_encrypt, ctr_crypt, ctr_xor, ecb_encrypt, xts_decrypt, xts_encrypt,
};
use sentry::crypto::{
    Aes, AesRef, AesStateLayout, BitslicedAes, KeySize, PageCipherMode, TrackedAes, VecStore,
};
use sentry::kernel::crypto_api::{CipherEngine, GenericAesEngine};
use sentry::soc::Soc;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn all_implementations_agree_on_cbc(
        key in vec(any::<u8>(), 16..=16),
        iv in vec(any::<u8>(), 16..=16),
        blocks in 1usize..16,
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..blocks * 16).map(|i| (i as u8).wrapping_mul(31) ^ seed).collect();
        let iv: [u8; 16] = iv.try_into().unwrap();

        // 1. Fast table-driven.
        let mut fast = data.clone();
        cbc_encrypt(&Aes::new(&key).unwrap(), &iv, &mut fast);

        // 2. Reference spec implementation.
        let mut reference = data.clone();
        cbc_encrypt(&AesRef::new(&key).unwrap(), &iv, &mut reference);
        prop_assert_eq!(&fast, &reference);

        // 3. Tracked through a plain store.
        let layout = AesStateLayout::for_key_size(KeySize::Aes128);
        let mut store = VecStore::new(layout.total_bytes());
        let tracked = TrackedAes::init(&mut store, &key).unwrap();
        let mut tr = data.clone();
        tracked.cbc_encrypt(&mut store, &iv, &mut tr);
        prop_assert_eq!(&fast, &tr);

        // 4. The generic kernel engine.
        let mut soc = Soc::tegra3_small();
        let mut engine = GenericAesEngine::new(0);
        engine.set_key(&mut soc, &key).unwrap();
        let mut eng = data.clone();
        engine.encrypt(&mut soc, &iv, &mut eng).unwrap();
        prop_assert_eq!(&fast, &eng);

        // 5. AES On SoC, both backends.
        for backend in [OnSocBackend::Iram, OnSocBackend::LockedL2 { max_ways: 1 }] {
            let mut soc = Soc::tegra3_small();
            let mut os = OnSocStore::new(backend, &mut soc).unwrap();
            let mut onsoc = build_engine(&mut os, &mut soc, &key).unwrap();
            let mut data2 = data.clone();
            onsoc.encrypt(&mut soc, &iv, &mut data2).unwrap();
            prop_assert_eq!(&fast, &data2);
            // And decryption inverts.
            onsoc.decrypt(&mut soc, &iv, &mut data2).unwrap();
            prop_assert_eq!(&data2, &data);
        }
    }

    #[test]
    fn all_implementations_agree_on_xts(
        key in vec(any::<u8>(), 16..=16),
        tweak in vec(any::<u8>(), 16..=16),
        blocks in 1usize..16,
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..blocks * 16).map(|i| (i as u8).wrapping_mul(37) ^ seed).collect();
        let tweak: [u8; 16] = tweak.try_into().unwrap();

        // 1. Fast table-driven (single-key XEX discipline: the tweak
        //    cipher is the data cipher, as the engines use it).
        let fast_aes = Aes::new(&key).unwrap();
        let mut fast = data.clone();
        xts_encrypt(&fast_aes, &fast_aes, &tweak, &mut fast);

        // 2. Reference spec implementation.
        let ref_aes = AesRef::new(&key).unwrap();
        let mut reference = data.clone();
        xts_encrypt(&ref_aes, &ref_aes, &tweak, &mut reference);
        prop_assert_eq!(&fast, &reference);

        // 3. Bitsliced batch backend — the lock path's lanes.
        let bits = BitslicedAes::from_schedule(fast_aes.schedule());
        let mut bs = data.clone();
        xts_encrypt(&bits, &bits, &tweak, &mut bs);
        prop_assert_eq!(&fast, &bs);

        // 4. Tracked through a plain store.
        let layout = AesStateLayout::for_key_size(KeySize::Aes128);
        let mut store = VecStore::new(layout.total_bytes());
        let tracked = TrackedAes::init(&mut store, &key).unwrap();
        let mut tr = data.clone();
        tracked.xts_encrypt(&mut store, &tweak, &mut tr);
        prop_assert_eq!(&fast, &tr);

        // 5. The generic kernel engine, switched into XTS.
        let mut soc = Soc::tegra3_small();
        let mut engine = GenericAesEngine::new(0);
        engine.set_mode(PageCipherMode::Xts).unwrap();
        engine.set_key(&mut soc, &key).unwrap();
        let mut eng = data.clone();
        engine.encrypt(&mut soc, &tweak, &mut eng).unwrap();
        prop_assert_eq!(&fast, &eng);

        // 6. AES On SoC, both backends.
        for backend in [OnSocBackend::Iram, OnSocBackend::LockedL2 { max_ways: 1 }] {
            let mut soc = Soc::tegra3_small();
            let mut os = OnSocStore::new(backend, &mut soc).unwrap();
            let mut onsoc = build_engine(&mut os, &mut soc, &key).unwrap();
            onsoc.set_mode(PageCipherMode::Xts).unwrap();
            let mut data2 = data.clone();
            onsoc.encrypt(&mut soc, &tweak, &mut data2).unwrap();
            prop_assert_eq!(&fast, &data2);
            onsoc.decrypt(&mut soc, &tweak, &mut data2).unwrap();
            prop_assert_eq!(&data2, &data);
        }

        // And the mode inverts at the modes level too.
        xts_decrypt(&fast_aes, &fast_aes, &tweak, &mut fast);
        prop_assert_eq!(&fast, &data);
    }

    #[test]
    fn all_implementations_agree_on_page_ctr(
        key in vec(any::<u8>(), 16..=16),
        iv in vec(any::<u8>(), 16..=16),
        blocks in 1usize..16,
        seed in any::<u8>(),
    ) {
        let data: Vec<u8> = (0..blocks * 16).map(|i| (i as u8).wrapping_mul(41) ^ seed).collect();
        let iv: [u8; 16] = iv.try_into().unwrap();

        // 1. Fast table-driven.
        let fast_aes = Aes::new(&key).unwrap();
        let mut fast = data.clone();
        ctr_crypt(&fast_aes, &iv, &mut fast);

        // 2. Reference spec implementation.
        let mut reference = data.clone();
        ctr_crypt(&AesRef::new(&key).unwrap(), &iv, &mut reference);
        prop_assert_eq!(&fast, &reference);

        // 3. Bitsliced batch backend.
        let bits = BitslicedAes::from_schedule(fast_aes.schedule());
        let mut bs = data.clone();
        ctr_crypt(&bits, &iv, &mut bs);
        prop_assert_eq!(&fast, &bs);

        // 4. Tracked through a plain store.
        let layout = AesStateLayout::for_key_size(KeySize::Aes128);
        let mut store = VecStore::new(layout.total_bytes());
        let tracked = TrackedAes::init(&mut store, &key).unwrap();
        let mut tr = data.clone();
        tracked.ctr_crypt(&mut store, &iv, &mut tr);
        prop_assert_eq!(&fast, &tr);

        // 5. The generic kernel engine, switched into CTR.
        let mut soc = Soc::tegra3_small();
        let mut engine = GenericAesEngine::new(0);
        engine.set_mode(PageCipherMode::Ctr).unwrap();
        engine.set_key(&mut soc, &key).unwrap();
        let mut eng = data.clone();
        engine.encrypt(&mut soc, &iv, &mut eng).unwrap();
        prop_assert_eq!(&fast, &eng);

        // 6. AES On SoC, both backends; CTR is its own inverse.
        for backend in [OnSocBackend::Iram, OnSocBackend::LockedL2 { max_ways: 1 }] {
            let mut soc = Soc::tegra3_small();
            let mut os = OnSocStore::new(backend, &mut soc).unwrap();
            let mut onsoc = build_engine(&mut os, &mut soc, &key).unwrap();
            onsoc.set_mode(PageCipherMode::Ctr).unwrap();
            let mut data2 = data.clone();
            onsoc.encrypt(&mut soc, &iv, &mut data2).unwrap();
            prop_assert_eq!(&fast, &data2);
            onsoc.decrypt(&mut soc, &iv, &mut data2).unwrap();
            prop_assert_eq!(&data2, &data);
        }

        ctr_crypt(&fast_aes, &iv, &mut fast);
        prop_assert_eq!(&fast, &data);
    }

    #[test]
    fn cbc_roundtrips_for_all_key_sizes(
        key_len in prop::sample::select(vec![16usize, 24, 32]),
        blocks in 1usize..32,
        key_seed in any::<u64>(),
    ) {
        let key: Vec<u8> = (0..key_len).map(|i| (key_seed >> (i % 8)) as u8 ^ i as u8).collect();
        let aes = Aes::new(&key).unwrap();
        let data: Vec<u8> = (0..blocks * 16).map(|i| i as u8).collect();
        let iv = [0x3Cu8; 16];
        let mut work = data.clone();
        cbc_encrypt(&aes, &iv, &mut work);
        prop_assert_ne!(&work, &data);
        cbc_decrypt(&aes, &iv, &mut work);
        prop_assert_eq!(&work, &data);
    }

    #[test]
    fn ctr_is_an_involution_for_any_length(
        len in 0usize..200,
        key in vec(any::<u8>(), 32..=32),
        counter in any::<u64>(),
    ) {
        let aes = Aes::new(&key).unwrap();
        let data: Vec<u8> = (0..len).map(|i| i as u8 ^ 0x5A).collect();
        let mut work = data.clone();
        ctr_xor(&aes, b"noncenon", counter, &mut work);
        ctr_xor(&aes, b"noncenon", counter, &mut work);
        prop_assert_eq!(work, data);
    }

    #[test]
    fn different_keys_give_unrelated_ciphertexts(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let mut ka = [0u8; 16];
        ka[..8].copy_from_slice(&a.to_le_bytes());
        let mut kb = [0u8; 16];
        kb[..8].copy_from_slice(&b.to_le_bytes());
        let mut pa = [0u8; 16];
        let mut pb = [0u8; 16];
        Aes::new(&ka).unwrap().encrypt_block(&mut pa);
        Aes::new(&kb).unwrap().encrypt_block(&mut pb);
        prop_assert_ne!(pa, pb);
    }

    #[test]
    fn ecb_reveals_structure_cbc_hides_it(fill in any::<u8>()) {
        let aes = Aes::new(&[1u8; 16]).unwrap();
        let mut ecb = vec![fill; 64];
        ecb_encrypt(&aes, &mut ecb);
        prop_assert_eq!(&ecb[0..16], &ecb[16..32], "ECB leaks equal blocks");
        let mut cbc = vec![fill; 64];
        cbc_encrypt(&aes, &[2u8; 16], &mut cbc);
        prop_assert_ne!(&cbc[0..16], &cbc[16..32], "CBC hides equal blocks");
    }
}
