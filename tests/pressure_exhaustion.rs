//! Exhaustion at every lifecycle entry point must degrade, never die.
//!
//! The pressure governor's contract: with the on-SoC store driven to
//! physical exhaustion *before* a lifecycle operation runs, the
//! operation either completes (the governor shed or spilled its way to
//! the space it needed) or surfaces a typed error — never a panic,
//! never torn state — and once pressure relents a retry of the same
//! operation succeeds with byte-identical application data.

use proptest::prelude::*;
use sentry::core::{PressureLevel, Sentry, SentryConfig, SentryError};
use sentry::kernel::Kernel;
use sentry::soc::failpoint::{FaultAction, FaultPlan};
use sentry::soc::Soc;

const PAGE: usize = 4096;
const PAGES: usize = 8;

/// The lifecycle entry points the exhaustion sweep drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    Lock,
    Unlock,
    Fault,
    Sweep,
    Evict,
    Recover,
}

const ENTRIES: [Entry; 6] = [
    Entry::Lock,
    Entry::Unlock,
    Entry::Fault,
    Entry::Sweep,
    Entry::Evict,
    Entry::Recover,
];

fn working_set(seed: u8) -> Vec<u8> {
    (0..PAGES * PAGE)
        .map(|i| {
            seed.wrapping_mul(29)
                .wrapping_add((i * 13 + i / PAGE) as u8)
        })
        .collect()
}

/// A Sentry with every elective on-SoC consumer enabled: readahead
/// clusters, the background sweeper, and a pager slot budget small
/// enough that eviction actually runs.
fn build(seed: u8) -> (Sentry, u32, Vec<u8>) {
    let config = SentryConfig::tegra3_locked_l2(2)
        .with_readahead(sentry::core::config::ReadaheadConfig::with_cluster(4).sweep_budget(2))
        .with_slot_limit(2);
    let mut s = Sentry::new(Kernel::new(Soc::tegra3_small()), config).expect("sentry");
    let pid = s.kernel.spawn("vault");
    s.mark_sensitive(pid).expect("mark sensitive");
    let data = working_set(seed);
    s.write(pid, 0, &data).expect("write vault");
    (s, pid, data)
}

/// Grab every allocatable on-SoC page, then hand back `leave` of them.
/// Returns the hoard so the test can relieve pressure later.
fn exhaust(s: &mut Sentry, leave: usize) -> Vec<u64> {
    let mut hoard = Vec::new();
    loop {
        match s.store.alloc_page(&mut s.kernel.soc) {
            Ok(page) => hoard.push(page),
            Err(SentryError::OnSocExhausted) => break,
            Err(e) => panic!("exhaustion must be typed: {e:?}"),
        }
    }
    for _ in 0..leave {
        if let Some(page) = hoard.pop() {
            s.store.free_page(&mut s.kernel.soc, page).expect("free");
        }
    }
    hoard
}

/// Release the hoard — pressure relief.
fn relieve(s: &mut Sentry, hoard: Vec<u64>) {
    for page in hoard {
        s.store.free_page(&mut s.kernel.soc, page).expect("free");
    }
    s.sync_pressure();
}

/// Run one entry point once. Every outcome but a typed error is a bug.
fn drive(s: &mut Sentry, pid: u32, entry: Entry) -> Result<(), SentryError> {
    match entry {
        Entry::Lock => s.on_lock().map(drop),
        Entry::Unlock => s.on_unlock().map(drop),
        Entry::Fault => s.touch_pages(pid, &[0, 1]),
        Entry::Sweep => s.sweep(2).map(drop),
        // Two faults through a 2-slot pager force an eviction sweep.
        Entry::Evict => {
            let vpns: Vec<u64> = (0..PAGES as u64).collect();
            s.touch_pages(pid, &vpns)
        }
        Entry::Recover => s.recover().map(drop),
    }
}

/// Put the machine in the state `entry` expects (locked for unlock,
/// unlocked-with-residue for fault/sweep/evict, an interrupted
/// transition for recover).
fn stage(s: &mut Sentry, entry: Entry) {
    match entry {
        Entry::Lock => {}
        Entry::Unlock => {
            s.on_lock().expect("staging lock");
        }
        Entry::Fault | Entry::Sweep | Entry::Evict => {
            s.on_lock().expect("staging lock");
            s.on_unlock().expect("staging unlock");
        }
        Entry::Recover => {
            // Kill the lock inside its journaled publish loop so
            // recover() has an open journal to roll forward under
            // exhaustion.
            s.kernel.soc.failpoints.arm(FaultPlan::at_site(
                "txn.publish",
                0,
                FaultAction::PowerCut { decay: None },
            ));
            let err = s.on_lock().expect_err("armed lock must die");
            assert!(err.is_power_loss());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// The exhaustion sweep: for every entry point, exhaustion-then-op
    /// yields success (shed/spill) or a typed error, recovery clears any
    /// open journal, and relief-then-retry converges byte-identically.
    #[test]
    fn exhaustion_before_every_entry_point_degrades_gracefully(
        entry_idx in 0usize..ENTRIES.len(),
        leave in 0usize..3,
        seed in any::<u8>(),
    ) {
        let entry = ENTRIES[entry_idx];
        let (mut s, pid, data) = build(seed);
        stage(&mut s, entry);
        let hoard = exhaust(&mut s, leave);

        match drive(&mut s, pid, entry) {
            // The governor shed or spilled its way through.
            Ok(()) => {}
            Err(
                SentryError::OnSocExhausted
                | SentryError::TransitionInFlight { .. },
            ) => {}
            Err(e) => prop_assert!(false, "untyped degradation at {entry:?}: {e:?}"),
        }
        // Never torn: an open journal is recoverable right now, even
        // while the store is still exhausted.
        if s.txn_in_flight() {
            s.recover().expect("recovery must run under exhaustion");
            prop_assert!(!s.txn_in_flight());
        }

        // Relief, then the same operation must go through.
        relieve(&mut s, hoard);
        if s.txn_in_flight() {
            s.recover().expect("recovery after relief");
        }
        match drive(&mut s, pid, entry) {
            Ok(()) => {}
            // Legal state drift from the first attempt: a lock/unlock
            // that *succeeded* under exhaustion leaves the retry on the
            // wrong side of the state machine.
            Err(SentryError::WrongState { .. }) => {}
            Err(e) => prop_assert!(false, "retry after relief failed at {entry:?}: {e:?}"),
        }

        // Whatever happened, the vault must still read back
        // byte-identically once the machine settles unlocked.
        if s.state() == sentry::core::DeviceState::Locked {
            s.on_unlock().expect("settling unlock");
        }
        let vpns: Vec<u64> = (0..PAGES as u64).collect();
        s.touch_pages(pid, &vpns).expect("settling touch");
        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).expect("settling read");
        prop_assert_eq!(back, data, "torn state after {:?}", entry);
        prop_assert_eq!(s.residual_encrypted_pages(), 0);
    }

    /// Teardown never leaks: spawn/write/exit churn under a tight budget
    /// returns every on-SoC page, so occupancy after each exit is back
    /// at (or below) its pre-spawn level and allocations keep working.
    #[test]
    fn spawn_exit_churn_holds_occupancy_flat(
        spawns in 1usize..12,
        seed in any::<u8>(),
    ) {
        let (mut s, _pid, _data) = build(seed);
        s.on_lock().expect("lock");
        s.on_unlock().expect("unlock");
        s.sync_pressure();
        let baseline = s.store.in_use_bytes();
        for n in 0..spawns {
            let pid = s.kernel.spawn("churn");
            s.mark_sensitive(pid).expect("sensitive");
            let img = vec![seed.wrapping_add(n as u8); PAGE];
            s.write(pid, 0, &img).expect("write");
            s.touch_pages(pid, &[0]).expect("touch");
            let reclaimed = s.on_exit(pid).expect("exit");
            let _ = reclaimed;
            prop_assert!(
                s.store.in_use_bytes() <= baseline,
                "on-SoC occupancy grew across teardown: {} > {} after {} spawns",
                s.store.in_use_bytes(), baseline, n + 1
            );
        }
        // The store still allocates after the churn — nothing leaked
        // into a phantom claim.
        let page = s.store.alloc_page(&mut s.kernel.soc).expect("alloc after churn");
        s.store.free_page(&mut s.kernel.soc, page).expect("free");
    }
}

/// Deterministic walk of the watermark machine through a real lifecycle:
/// a budget squeeze raises the level, the governor sheds (sweeper pause,
/// cluster shrink) and spills, and lifting the budget drops back to
/// Normal with the telemetry consistent.
#[test]
fn budget_squeeze_walks_watermarks_and_sheds() {
    let (mut s, pid, data) = build(0x5A);
    s.on_lock().expect("lock");
    s.on_unlock().expect("unlock");
    s.sync_pressure();
    assert_eq!(s.pressure_level(), PressureLevel::Normal);

    // Clamp the budget so current occupancy sits at 80% — inside the
    // High band: elective load sheds, but allocations still fit.
    let resident = s.store.in_use_bytes();
    s.set_onsoc_budget(Some(resident * 5 / 4)).expect("squeeze");
    assert_eq!(
        s.pressure_level(),
        PressureLevel::High,
        "80% occupancy must classify High"
    );
    assert!(
        s.stats.pressure.transitions_high >= 1,
        "no High transition counted: {:?}",
        s.stats.pressure
    );

    // Elective load sheds while pressure is up: ticks skip the sweeper,
    // faults shrink their clusters to a single page.
    let before = s.stats.pressure.sheds;
    s.scheduler_tick().expect("tick under pressure");
    s.touch_pages(pid, &[3]).expect("fault under pressure");
    s.sync_pressure();
    assert!(
        s.stats.pressure.sheds > before,
        "no shed recorded under pressure: {:?}",
        s.stats.pressure
    );
    if s.last_fault.is_some() {
        assert_eq!(
            s.last_fault.as_ref().map(|f| f.pages),
            Some(1),
            "readahead cluster must shrink to one page under pressure"
        );
    }

    // Relief: back to Normal, and the vault is untouched.
    s.set_onsoc_budget(None).expect("relief");
    assert_eq!(s.pressure_level(), PressureLevel::Normal);
    let vpns: Vec<u64> = (0..PAGES as u64).collect();
    s.touch_pages(pid, &vpns).expect("drain");
    let mut back = vec![0u8; data.len()];
    s.read(pid, 0, &mut back).expect("read");
    assert_eq!(back, data);
}

/// A disabled governor is the pre-governor machine: no denials beyond
/// physical exhaustion, level pinned at Normal, occupancy still tracked.
#[test]
fn disabled_governor_never_denies_or_sheds() {
    let config =
        SentryConfig::tegra3_locked_l2(2).with_pressure(sentry::core::PressureConfig::disabled());
    let mut s = Sentry::new(Kernel::new(Soc::tegra3_small()), config).expect("sentry");
    let pid = s.kernel.spawn("vault");
    s.mark_sensitive(pid).expect("sensitive");
    s.write(pid, 0, &vec![0xEE; PAGE]).expect("write");
    // A budget override is inert while the governor is off.
    s.set_onsoc_budget(Some(PAGE as u64)).expect("budget");
    assert_eq!(s.pressure_level(), PressureLevel::Normal);
    s.on_lock().expect("lock");
    s.on_unlock().expect("unlock");
    s.sync_pressure();
    assert_eq!(s.stats.pressure.denied, 0);
    assert_eq!(s.stats.pressure.spills, 0);
    assert!(s.stats.pressure.high_water_bytes > 0, "occupancy untracked");
}
