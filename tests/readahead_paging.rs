//! Properties of the unlock-latency engine: fault-cluster readahead and
//! the background decrypt sweeper are *performance* features — which
//! pages they decrypt, in what groupings, and when the sweeper runs must
//! never show up in the bytes or the page-table state.

use proptest::collection::vec;
use proptest::prelude::*;
use sentry::core::config::ReadaheadConfig;
use sentry::core::{Sentry, SentryConfig};
use sentry::kernel::pagetable::Pte;
use sentry::kernel::Kernel;
use sentry::soc::Soc;

const PAGE: usize = 4096;

/// Deterministic per-page plaintext.
fn working_set(pages: usize, seed: u64) -> Vec<u8> {
    (0..pages * PAGE)
        .map(|i| {
            (seed as u8)
                .wrapping_mul(31)
                .wrapping_add((i * 7 + i / PAGE) as u8)
        })
        .collect()
}

/// One scripted step of the post-unlock access pattern.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// First-touch (or re-touch) of a page — may trigger a fault cluster.
    Touch(u64),
    /// A scheduler tick — drives the background sweeper when enabled.
    Tick,
}

/// Run the same locked→unlocked paging script on a Sentry with the given
/// readahead config and return everything observable: the decrypted data
/// as the app reads it, the DRAM image, and every PTE.
#[allow(clippy::type_complexity)]
fn run_script(
    pages: usize,
    seed: u64,
    ops: &[Op],
    readahead: Option<ReadaheadConfig>,
) -> (Vec<u8>, Vec<(u64, Vec<u8>)>, Vec<Pte>, u64) {
    let mut config = SentryConfig::tegra3_locked_l2(2);
    if let Some(ra) = readahead {
        config = config.with_readahead(ra);
    }
    let mut s = Sentry::new(Kernel::new(Soc::tegra3_small()), config).unwrap();
    let pid = s.kernel.spawn("app");
    s.mark_sensitive(pid).unwrap();
    let data = working_set(pages, seed);
    s.write(pid, 0, &data).unwrap();
    s.on_lock().unwrap();
    s.on_unlock().unwrap();

    for &op in ops {
        match op {
            Op::Touch(vpn) => s.touch_pages(pid, &[vpn % pages as u64]).unwrap(),
            Op::Tick => {
                s.scheduler_tick().unwrap();
            }
        }
    }
    // Drain whatever is left so both runs end fully decrypted.
    let remaining: Vec<u64> = (0..pages as u64).collect();
    s.touch_pages(pid, &remaining).unwrap();
    assert_eq!(s.residual_encrypted_pages(), 0);
    assert_eq!(
        s.pager.resident_count(),
        0,
        "unlock paging must not use on-SoC slots"
    );

    let mut back = vec![0u8; data.len()];
    s.read(pid, 0, &mut back).unwrap();
    assert_eq!(back, data, "plaintext corrupted by paging");

    s.kernel.soc.cache_maintenance_flush();
    let dram: Vec<(u64, Vec<u8>)> = s
        .kernel
        .soc
        .dram
        .iter_frames()
        .map(|(addr, frame)| (addr, frame.to_vec()))
        .collect();
    let ptes: Vec<Pte> = (0..pages as u64)
        .map(|vpn| *s.kernel.proc(pid).unwrap().page_table.get(vpn).unwrap())
        .collect();
    let decrypted_bytes = s.stats.ondemand_bytes + s.stats.sweep_pages * PAGE as u64;
    (back, dram, ptes, decrypted_bytes)
}

fn ops_from(raw: &[(u8, u8)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, vpn)| {
            if kind % 3 == 0 {
                Op::Tick
            } else {
                Op::Touch(u64::from(vpn))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Readahead + sweeper paging ends in exactly the state pure
    /// single-page fault-driven paging ends in — same plaintext, same
    /// DRAM frames, same PTE backing/crypt_epoch/young/encrypted bits —
    /// for every cluster size, sweep budget, and interleaving of faults
    /// with sweeper ticks.
    #[test]
    fn readahead_paging_is_byte_identical_to_fault_driven_paging(
        pages in 4usize..28,
        cluster in 1usize..17,
        budget in 0usize..9,
        seed in any::<u64>(),
        raw_ops in vec((any::<u8>(), any::<u8>()), 0..24),
    ) {
        let ops = ops_from(&raw_ops);
        let reference = run_script(pages, seed, &ops, None);
        let engine = run_script(
            pages,
            seed,
            &ops,
            Some(ReadaheadConfig::with_cluster(cluster).sweep_budget(budget)),
        );
        prop_assert_eq!(&engine.0, &reference.0, "plaintext diverged");
        prop_assert_eq!(&engine.1, &reference.1, "DRAM image diverged");
        prop_assert_eq!(&engine.2, &reference.2, "PTE state diverged");
        // Coherence: every page is decrypted exactly once, whether by a
        // fault cluster, the sweeper, or a plain fault — never twice.
        prop_assert_eq!(engine.3, (pages * PAGE) as u64, "a frame was double-decrypted");
        prop_assert_eq!(reference.3, (pages * PAGE) as u64);
    }

    /// `cluster_pages = 1` with the sweeper off degenerates to the exact
    /// pre-readahead fault path.
    #[test]
    fn cluster_of_one_is_the_degenerate_single_page_path(
        pages in 2usize..16,
        seed in any::<u64>(),
    ) {
        let ops: Vec<Op> = (0..pages as u64).rev().map(Op::Touch).collect();
        let reference = run_script(pages, seed, &ops, None);
        let degenerate = run_script(
            pages,
            seed,
            &ops,
            Some(ReadaheadConfig::with_cluster(1).sweep_budget(0)),
        );
        prop_assert_eq!(&degenerate.1, &reference.1);
        prop_assert_eq!(&degenerate.2, &reference.2);
    }
}
