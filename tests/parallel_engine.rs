//! Properties of the parallel page-crypt engine: the worker count is an
//! implementation detail that must never show up in the bytes.

use proptest::collection::vec;
use proptest::prelude::*;
use sentry::core::config::ParallelConfig;
use sentry::core::{Sentry, SentryConfig};
use sentry::crypto::parallel::{crypt_batch, Direction, PageJob};
use sentry::crypto::{Aes, PageCipherMode};
use sentry::kernel::Kernel;
use sentry::soc::Soc;

fn pages_from_seed(count: usize, seed: u64) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            (0..4096usize)
                .map(|j| {
                    (seed as u8)
                        .wrapping_mul(7)
                        .wrapping_add((i * 131 + j) as u8)
                })
                .collect()
        })
        .collect()
}

fn run_batch(
    pages: &[Vec<u8>],
    key: &[u8],
    mode: PageCipherMode,
    direction: Direction,
    workers: usize,
) -> Vec<Vec<u8>> {
    let aes = Aes::new(key).unwrap();
    let mut work = pages.to_vec();
    let mut jobs: Vec<PageJob<'_>> = work
        .iter_mut()
        .enumerate()
        .map(|(i, p)| PageJob {
            iv: [(i as u8).wrapping_mul(17); 16],
            data: p.as_mut_slice(),
        })
        .collect();
    crypt_batch(&aes, mode, direction, &mut jobs, workers, 1).unwrap();
    work
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn every_worker_count_produces_identical_ciphertext(
        key in vec(any::<u8>(), 32..=32),
        pages in 1usize..33,
        seed in any::<u64>(),
    ) {
        let plain = pages_from_seed(pages, seed);
        for mode in PageCipherMode::all() {
            let reference = run_batch(&plain, &key, mode, Direction::Encrypt, 1);
            for workers in [2usize, 4, 8] {
                let got = run_batch(&plain, &key, mode, Direction::Encrypt, workers);
                prop_assert_eq!(&got, &reference, "{} workers diverged under {}", workers, mode);
            }
            // And the inverse direction agrees too, across a different
            // worker count than the one that encrypted.
            let back = run_batch(&reference, &key, mode, Direction::Decrypt, 4);
            prop_assert_eq!(&back, &plain, "decrypt under {} lost bytes", mode);
        }
    }

    #[test]
    fn odd_page_counts_split_without_loss(
        pages in 1usize..50,
        workers in 1usize..9,
        seed in any::<u64>(),
    ) {
        // Odd, prime, and sub-worker batch sizes all preserve every
        // byte: the contiguous split never drops or duplicates a page.
        let plain = pages_from_seed(pages, seed);
        let aes = Aes::new(&[0x42u8; 16]).unwrap();
        let mut work = plain.clone();
        let mut jobs: Vec<PageJob<'_>> = work
            .iter_mut()
            .enumerate()
            .map(|(i, p)| PageJob { iv: [i as u8; 16], data: p.as_mut_slice() })
            .collect();
        let rep = crypt_batch(&aes, PageCipherMode::Cbc, Direction::Encrypt, &mut jobs, workers, 1).unwrap();
        prop_assert_eq!(rep.pages, pages);
        prop_assert_eq!(rep.bytes, pages as u64 * 4096);
        prop_assert_eq!(rep.per_worker_bytes.iter().sum::<u64>(), rep.bytes);
        prop_assert_eq!(rep.workers_used, workers.min(pages));

        let mut jobs: Vec<PageJob<'_>> = work
            .iter_mut()
            .enumerate()
            .map(|(i, p)| PageJob { iv: [i as u8; 16], data: p.as_mut_slice() })
            .collect();
        crypt_batch(&aes, PageCipherMode::Cbc, Direction::Decrypt, &mut jobs, workers, 1).unwrap();
        prop_assert_eq!(work, plain);
    }
}

#[test]
fn below_floor_batches_take_the_sequential_fallback() {
    let plain = pages_from_seed(5, 99);
    let aes = Aes::new(&[7u8; 16]).unwrap();
    let mut work = plain.clone();
    let mut jobs: Vec<PageJob<'_>> = work
        .iter_mut()
        .enumerate()
        .map(|(i, p)| PageJob {
            iv: [i as u8; 16],
            data: p.as_mut_slice(),
        })
        .collect();
    let rep = crypt_batch(
        &aes,
        PageCipherMode::Cbc,
        Direction::Encrypt,
        &mut jobs,
        8,
        6,
    )
    .unwrap();
    assert!(
        rep.sequential_fallback,
        "5 pages < floor of 6 must not fan out"
    );
    assert_eq!(rep.workers_used, 1);
    // Identical bytes to a genuinely parallel run of the same batch.
    let mut par = plain.clone();
    let mut jobs: Vec<PageJob<'_>> = par
        .iter_mut()
        .enumerate()
        .map(|(i, p)| PageJob {
            iv: [i as u8; 16],
            data: p.as_mut_slice(),
        })
        .collect();
    let rep2 = crypt_batch(
        &aes,
        PageCipherMode::Cbc,
        Direction::Encrypt,
        &mut jobs,
        5,
        1,
    )
    .unwrap();
    assert!(!rep2.sequential_fallback);
    assert_eq!(work, par, "fallback and fan-out bytes differ");
}

#[test]
fn full_lock_path_is_worker_invariant_end_to_end() {
    // Same app, same writes, different worker counts: every DRAM frame
    // must hold identical ciphertext after lock, and unlocked reads must
    // return the original data.
    let image_with = |workers: usize, mode: PageCipherMode| {
        let mut s = Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(2)
                .with_cipher_mode(mode)
                .with_parallel(ParallelConfig {
                    workers,
                    min_batch_pages: 1,
                }),
        )
        .unwrap();
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..=254u8).cycle().take(17 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        s.on_lock().unwrap();
        s.kernel.soc.cache_maintenance_flush();
        let image: Vec<(u64, Vec<u8>)> = s
            .kernel
            .soc
            .dram
            .iter_frames()
            .map(|(addr, frame)| (addr, frame.to_vec()))
            .collect();
        s.on_unlock().unwrap();
        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data, "{workers} workers corrupted data");
        image
    };
    for mode in PageCipherMode::all() {
        let reference = image_with(1, mode);
        for workers in [2usize, 4, 8] {
            assert_eq!(
                image_with(workers, mode),
                reference,
                "{workers} workers diverged under {mode}"
            );
        }
    }
}
