//! Crash consistency under exhaustive power-cut injection.
//!
//! The fault matrix enumerates every reachable failpoint step of a
//! lock/unlock/fault/sweep schedule and kills the machine at each one.
//! Every cell must satisfy: no cold-boot-visible plaintext while
//! nominally locked, no torn PTE (an `encrypted` entry over a plaintext
//! frame), and — after `recover()` plus a retry of the killed
//! operation — byte-for-byte convergence with an uninterrupted run.
//!
//! Alongside the matrix: recovery idempotence, clean-system no-op
//! recovery, re-entrancy guards while a transition journal is open,
//! injected crypt-engine failures on the readahead and sweeper paths,
//! and the real-power-loss case where the iRAM journal dies with the
//! power.

use sentry::attacks::faultmatrix::{
    record, run_cell, run_decay_cell, run_matrix, EndState, Scenario, SECRET,
};
use sentry::core::{RecoveryReport, SentryError};
use sentry::soc::dram::PowerEvent;
use sentry::soc::failpoint::{FaultAction, FaultPlan};

#[test]
fn exhaustive_fault_matrix_locked_l2() {
    let scn = Scenario::tegra3(0xC0FFEE);
    let matrix = run_matrix(&scn).unwrap();
    assert!(matrix.total_steps > 20, "schedule too shallow");
    assert_eq!(
        matrix.kills(),
        matrix.cells.len(),
        "every armed step must actually fire"
    );
    let dirty: Vec<_> = matrix.cells.iter().filter(|c| !c.clean()).collect();
    assert!(
        dirty.is_empty(),
        "{} of {} cells dirty; first: {:?}",
        dirty.len(),
        matrix.cells.len(),
        dirty.first()
    );
    assert!(
        matrix.recovered_entries() > 0,
        "no kill ever landed inside an open journal — the matrix is not \
         exercising recovery"
    );
    // The kills are spread across the lifecycle, not clustered on one
    // site.
    assert!(matrix.site_histogram().len() >= 8, "kill sites too few");
}

#[test]
fn exhaustive_fault_matrix_iram_backend() {
    let matrix = run_matrix(&Scenario::iram(0xB007)).unwrap();
    assert!(matrix.clean(), "iram matrix dirty");
    assert!(matrix.recovered_entries() > 0);
}

#[test]
fn exhaustive_fault_matrix_parallel_engine() {
    let matrix = run_matrix(&Scenario::tegra3_parallel(0xFA11)).unwrap();
    assert!(matrix.clean(), "parallel-engine matrix dirty");
}

#[test]
fn decay_matrix_quarantines_rot_and_converges_on_the_survivors() {
    // Power cut at every reachable step, then two encrypted vault
    // frames rot one bit each while the machine is down. The reboot's
    // recovery audit must quarantine whatever the journal roll-forward
    // could not heal, the retried schedule must run to completion
    // around the quarantine, and the surviving set must converge with
    // the uninterrupted reference byte-for-byte.
    let scn = Scenario::tegra3(0xDECA4);
    let reference = record(&scn).unwrap();
    let mut fired = 0usize;
    let mut decayed_cells = 0usize;
    let mut quarantined_total = 0usize;
    for step in 0..reference.steps {
        let cell = run_decay_cell(&scn, &reference, step, 2).unwrap();
        assert!(cell.clean(), "step {step} dirty: {cell:?}");
        fired += usize::from(cell.fired);
        decayed_cells += usize::from(!cell.decayed_frames.is_empty());
        quarantined_total += cell.quarantined_final;
    }
    assert_eq!(fired as u64, reference.steps, "every step must kill");
    assert!(
        decayed_cells > 0,
        "no cell ever found an encrypted frame to decay"
    );
    assert!(
        quarantined_total > 0,
        "decay never reached quarantine anywhere"
    );
}

#[test]
fn decay_is_quarantined_eagerly_at_recovery_time() {
    // Every rotten frame must sit in quarantine the moment `recover()`
    // returns — via the boot-time audit for frames encrypted at rest,
    // or via the journal roll-forward's MAC check for frames caught
    // mid-decrypt — never lazily on some later demand fault. Detection
    // at reboot means the violation is typed and logged before any app
    // can even ask for the page. Both mechanisms must actually fire
    // somewhere in the sweep.
    let scn = Scenario::tegra3(0xDECA5);
    let reference = record(&scn).unwrap();
    let mut via_audit = 0usize;
    let mut via_journal = 0usize;
    for step in 0..reference.steps {
        let cell = run_decay_cell(&scn, &reference, step, 2).unwrap();
        if !cell.fired || cell.decayed_frames.is_empty() {
            continue;
        }
        assert!(cell.clean(), "step {step} dirty: {cell:?}");
        assert_eq!(
            cell.quarantined_at_boot,
            cell.decayed_frames.len(),
            "step {step}: a rotten frame survived recovery unquarantined: {cell:?}"
        );
        via_audit += cell.quarantined_by_recovery;
        via_journal += cell.quarantined_at_boot - cell.quarantined_by_recovery;
    }
    assert!(via_audit > 0, "the boot-time audit never quarantined");
    assert!(
        via_journal > 0,
        "the journal roll-forward MAC check never quarantined"
    );
}

#[test]
fn kill_cells_are_deterministic() {
    let scn = Scenario::tegra3(42);
    let reference = record(&scn).unwrap();
    let step = reference
        .sites
        .iter()
        .find(|(site, _)| *site == "txn.publish")
        .map(|&(_, step)| step)
        .expect("schedule reaches txn.publish");
    let a = run_cell(&scn, &reference, step).unwrap();
    let b = run_cell(&scn, &reference, step).unwrap();
    assert_eq!(a.site, b.site);
    assert_eq!(a.killed_op, b.killed_op);
    assert_eq!(a.recovery, b.recovery);
    assert!(a.clean() && b.clean());
}

#[test]
fn recovery_is_idempotent() {
    let scn = Scenario::tegra3(9);
    let reference = record(&scn).unwrap();
    // Kill inside the first lock's journaled publish loop.
    let step = reference
        .sites
        .iter()
        .find(|(site, _)| *site == "txn.flip")
        .map(|&(_, step)| step)
        .unwrap();
    let (mut s, _actors) = scn.build().unwrap();
    s.kernel.soc.failpoints.arm(FaultPlan::at_step(
        step,
        FaultAction::PowerCut { decay: None },
    ));
    let err = s.on_lock().unwrap_err();
    assert!(err.is_power_loss());
    assert!(s.txn_in_flight());

    let first = s.recover().unwrap();
    assert!(first.journaled > 0);
    assert!(!s.txn_in_flight());
    let after_first = EndState::capture(&mut s);

    // A second recovery finds a closed journal and changes nothing.
    let second = s.recover().unwrap();
    assert_eq!(second, RecoveryReport::default());
    assert_eq!(EndState::capture(&mut s), after_first);
}

#[test]
fn recovery_on_a_clean_system_is_a_noop() {
    let scn = Scenario::tegra3(11);
    let (mut s, _actors) = scn.build().unwrap();
    let before = EndState::capture(&mut s);
    let report = s.recover().unwrap();
    assert_eq!(report, RecoveryReport::default());
    assert_eq!(EndState::capture(&mut s), before);
}

#[test]
fn open_journal_rejects_reentrant_transitions_with_typed_errors() {
    let scn = Scenario::tegra3(21);
    let reference = record(&scn).unwrap();
    // Second publish of the first lock: one page is already flipped
    // encrypted, the journal is open.
    let step = reference
        .sites
        .iter()
        .filter(|(site, _)| *site == "txn.publish")
        .nth(1)
        .map(|&(_, step)| step)
        .unwrap();
    let (mut s, actors) = scn.build().unwrap();
    s.kernel.soc.failpoints.arm(FaultPlan::at_step(
        step,
        FaultAction::PowerCut { decay: None },
    ));
    assert!(s.on_lock().unwrap_err().is_power_loss());
    assert!(s.txn_in_flight());

    // Every lifecycle entry point reports the in-flight transition as a
    // typed error instead of compounding the damage.
    assert!(matches!(
        s.on_lock(),
        Err(SentryError::TransitionInFlight { op: "on_lock" })
    ));
    assert!(matches!(
        s.on_unlock(),
        Err(SentryError::TransitionInFlight { op: "on_unlock" })
    ));
    assert!(matches!(
        s.sweep(4),
        Err(SentryError::TransitionInFlight { op: "sweep" })
    ));
    // The first job of the first lock is vault vpn 0; its PTE is
    // already flipped, so touching it faults into the guarded handler.
    assert!(matches!(
        s.touch_pages(actors.vault, &[0]),
        Err(SentryError::TransitionInFlight { op: "handle_fault" })
    ));

    // Recovery clears the guard; the lock then retries cleanly.
    s.recover().unwrap();
    s.on_lock().unwrap();
    s.on_unlock().unwrap();
    let mut buf = [0u8; 16];
    s.read(actors.vault, 0, &mut buf).unwrap();
    assert_eq!(&buf, SECRET);
}

#[test]
fn injected_crypt_error_on_readahead_is_retried_transparently() {
    let scn = Scenario::tegra3(33);
    let (mut s, actors) = scn.build().unwrap();
    s.on_lock().unwrap();
    s.on_unlock().unwrap();

    // First demand fault dispatches a decrypt batch; fail it once. The
    // failure happens before any publish — no journal, nothing torn —
    // so the bounded-retry policy re-attempts the batch internally and
    // the touch succeeds without the caller ever seeing the fault.
    s.kernel.soc.failpoints.arm(FaultPlan::at_site(
        "crypt.dispatch",
        0,
        FaultAction::CryptError,
    ));
    s.touch_pages(actors.vault, &[0]).unwrap();
    assert!(!s.txn_in_flight());
    assert_eq!(s.stats.crypt.attempts, 1, "one transparent retry");
    assert_eq!(s.stats.crypt.exhausted, 0);
    let mut buf = [0u8; 16];
    s.read(actors.vault, 0, &mut buf).unwrap();
    assert_eq!(&buf, SECRET);
}

#[test]
fn persistent_crypt_fault_on_readahead_exhausts_retries_cleanly() {
    let scn = Scenario::tegra3(36);
    let (mut s, actors) = scn.build().unwrap();
    s.on_lock().unwrap();
    s.on_unlock().unwrap();

    // A *persistent* fault — the plan re-fires on every dispatch — must
    // not spin: the typed RetriesExhausted surfaces after the cap.
    let cap = s.config.integrity.max_crypt_retries;
    s.kernel
        .soc
        .failpoints
        .arm(FaultPlan::at_site("crypt.dispatch", 0, FaultAction::CryptError).persistent());
    let err = s.touch_pages(actors.vault, &[0]).unwrap_err();
    assert!(
        matches!(
            err,
            SentryError::RetriesExhausted {
                op: "handle_fault",
                attempts
            } if attempts == cap
        ),
        "got {err:?}"
    );
    assert!(!s.txn_in_flight());
    assert_eq!(s.stats.crypt.attempts, u64::from(cap) - 1);
    assert_eq!(s.stats.crypt.exhausted, 1);
    let pte = *s.kernel.procs[&actors.vault].page_table.get(0).unwrap();
    assert!(pte.encrypted, "PTE must be untouched after exhaustion");

    // Once the fault clears (disarm), the same touch succeeds.
    s.kernel.soc.failpoints.disarm();
    s.touch_pages(actors.vault, &[0]).unwrap();
    let mut buf = [0u8; 16];
    s.read(actors.vault, 0, &mut buf).unwrap();
    assert_eq!(&buf, SECRET);
}

#[test]
fn injected_crypt_error_on_sweeper_is_retried_transparently() {
    let scn = Scenario::tegra3(34);
    let (mut s, actors) = scn.build().unwrap();
    s.on_lock().unwrap();
    s.on_unlock().unwrap();

    let residual_before = s.residual_encrypted_pages();
    assert!(residual_before > 0);
    s.kernel.soc.failpoints.arm(FaultPlan::at_site(
        "crypt.dispatch",
        0,
        FaultAction::CryptError,
    ));
    // The transient fault is absorbed by the retry policy: the tick
    // both reports the retry and still drains its budget.
    let report = s.scheduler_tick().unwrap();
    assert!(report.pages > 0);
    assert!(!s.txn_in_flight());
    assert_eq!(s.stats.crypt.attempts, 1);
    assert!(s.residual_encrypted_pages() < residual_before);
    let mut buf = [0u8; 16];
    s.read(actors.vault, 0, &mut buf).unwrap();
    assert_eq!(&buf, SECRET);
}

#[test]
fn persistent_crypt_fault_on_sweeper_exhausts_retries_cleanly() {
    let scn = Scenario::tegra3(37);
    let (mut s, _actors) = scn.build().unwrap();
    s.on_lock().unwrap();
    s.on_unlock().unwrap();

    let residual_before = s.residual_encrypted_pages();
    s.kernel
        .soc
        .failpoints
        .arm(FaultPlan::at_site("crypt.dispatch", 0, FaultAction::CryptError).persistent());
    let err = s.scheduler_tick().unwrap_err();
    assert!(
        matches!(err, SentryError::RetriesExhausted { op: "sweep", .. }),
        "got {err:?}"
    );
    assert!(!s.txn_in_flight());
    assert_eq!(s.stats.crypt.exhausted, 1);
    assert_eq!(
        s.residual_encrypted_pages(),
        residual_before,
        "an exhausted sweep must decrypt nothing"
    );

    // Fault cleared: the next tick drains the same batch.
    s.kernel.soc.failpoints.disarm();
    let report = s.scheduler_tick().unwrap();
    assert!(report.pages > 0);
}

#[test]
fn injected_extent_error_in_sequential_engine_is_retried_transparently() {
    let scn = Scenario::tegra3(35);
    let (mut s, actors) = scn.build().unwrap();
    s.on_lock().unwrap();
    s.on_unlock().unwrap();

    // The sequential engine's multi-page path goes through
    // decrypt_extent; fail inside the engine rather than the
    // dispatcher. The engine fails cleanly before transforming
    // anything, so the bounded retry heals this too.
    s.kernel.soc.failpoints.arm(FaultPlan::at_site(
        "crypt.extent",
        0,
        FaultAction::CryptError,
    ));
    s.touch_pages(actors.vault, &[0]).unwrap();
    assert!(!s.txn_in_flight());
    assert_eq!(s.stats.crypt.attempts, 1);
    let mut buf = [0u8; 16];
    s.read(actors.vault, 0, &mut buf).unwrap();
    assert_eq!(&buf, SECRET);
}

#[test]
fn real_power_loss_kills_the_journal_and_the_secrets_together() {
    let scn = Scenario::tegra3(55);
    let reference = record(&scn).unwrap();
    let step = reference
        .sites
        .iter()
        .find(|(site, _)| *site == "txn.publish")
        .map(|&(_, step)| step)
        .unwrap();
    let (mut s, _actors) = scn.build().unwrap();
    // A two-second power cut: DRAM decays to noise. iRAM is SRAM and
    // mostly *survives* two seconds — which is exactly why the boot
    // firmware zeroes it before anything else runs (§4.1); model that
    // boot duty explicitly.
    s.kernel.soc.failpoints.arm(FaultPlan::at_step(
        step,
        FaultAction::PowerCut {
            decay: Some(PowerEvent::HardReset { seconds: 2.0 }),
        },
    ));
    assert!(s.on_lock().unwrap_err().is_power_loss());
    s.kernel.soc.iram.zeroize();

    // The journal died with the power cycle: recovery parses nothing.
    let report = s.recover().unwrap();
    assert_eq!(report.journaled, 0);
    assert!(!s.txn_in_flight());

    // And the attacker's cold-boot dump holds no secret either.
    let dump = sentry::attacks::coldboot::dump_dram(&mut s.kernel.soc);
    assert!(
        sentry::attacks::coldboot::search(&dump, SECRET).is_empty(),
        "secret survived a 2 s power cut"
    );
}
