//! The encrypted spill path under a cold-boot attacker and a kill
//! switch.
//!
//! Critical pressure reclaims cold tag-store pages through the spill
//! region: CMAC'd under the epoch tweak, encrypted under the derived
//! spill key, staged to a dm-crypt-backed device. These tests pin the
//! two properties the design stands on: the region **never** holds
//! tag-store plaintext or vault plaintext (a cold-boot dump yields only
//! ciphertext), and a power cut at every spill/restore failpoint leaves
//! a machine that recovers to byte-identical application data.

use sentry::attacks::tamper::frame_of;
use sentry::core::{PressureLevel, Sentry, SentryConfig, SentryError};
use sentry::kernel::Kernel;
use sentry::soc::failpoint::{FaultAction, FaultPlan};
use sentry::soc::Soc;

const PAGE: usize = 4096;
const PAGES: usize = 8;

fn working_set(seed: u8) -> Vec<u8> {
    (0..PAGES * PAGE)
        .map(|i| {
            seed.wrapping_mul(37)
                .wrapping_add((i * 11 + i / PAGE) as u8)
        })
        .collect()
}

/// A locked vault whose tag store holds live tags: the spill lever's
/// natural prey. Returns the machine, the pid, and the plaintext.
fn locked_vault(seed: u8) -> (Sentry, u32, Vec<u8>) {
    let config = SentryConfig::tegra3_locked_l2(2);
    let mut s = Sentry::new(Kernel::new(Soc::tegra3_small()), config).expect("sentry");
    let pid = s.kernel.spawn("vault");
    s.mark_sensitive(pid).expect("sensitive");
    let data = working_set(seed);
    s.write(pid, 0, &data).expect("write");
    s.on_lock().expect("lock");
    (s, pid, data)
}

/// Squeeze the budget until the governor must spill, and assert it did.
fn squeeze_to_spill(s: &mut Sentry) {
    s.set_onsoc_budget(Some(sentry::soc::addr::PAGE_SIZE))
        .expect("squeeze");
    s.sync_pressure();
    assert!(
        s.stats.pressure.spills >= 1,
        "Critical squeeze never spilled: {:?} (level {:?})",
        s.stats.pressure,
        s.pressure_level()
    );
    assert!(s.integrity.spilled_pages() >= 1);
}

/// Every 16-byte window of `needle` must be absent from `haystack`.
fn assert_absent(haystack: &[u8], needle: &[u8], what: &str) {
    for window in needle.chunks(16).filter(|w| w.len() == 16) {
        assert!(
            !haystack.windows(16).any(|h| h == window),
            "{what} found in the spill region dump"
        );
    }
}

/// Cold-boot hygiene: after a real spill, a raw dump of the spill device
/// contains neither the tag-store plaintext that was spilled nor any
/// vault page bytes — only ciphertext under the power-volatile spill
/// key.
#[test]
fn spill_region_dump_holds_no_plaintext() {
    let (mut s, pid, data) = locked_vault(0xA7);

    // Capture the tag-store plaintext an attacker would hunt for: the
    // live tag bytes of the vault's frames, straight off the on-SoC
    // store while they are still resident.
    let mut tag_plain = Vec::new();
    for vpn in 0..PAGES as u64 {
        let frame = frame_of(&s, pid, vpn);
        let addr = s
            .integrity
            .tag_slot_addr(frame)
            .expect("locked frame has a tag slot");
        let mut tag = [0u8; 8];
        s.kernel.soc.mem_read(addr, &mut tag).expect("read tag");
        tag_plain.extend_from_slice(&tag);
    }
    assert!(tag_plain.iter().any(|&b| b != 0), "tags unexpectedly zero");

    squeeze_to_spill(&mut s);
    let raw = s
        .integrity
        .spill_region_raw()
        .expect("spill region exists after a spill");
    assert_absent(&raw, &tag_plain, "tag-store plaintext");
    assert_absent(&raw, &data, "vault plaintext");

    // The spilled page restores on demand (MAC-verified) and the vault
    // reads back byte-identically.
    s.set_onsoc_budget(None).expect("relief");
    s.on_unlock().expect("unlock restores spilled tags");
    let vpns: Vec<u64> = (0..PAGES as u64).collect();
    s.touch_pages(pid, &vpns).expect("drain");
    let mut back = vec![0u8; data.len()];
    s.read(pid, 0, &mut back).expect("read");
    assert_eq!(back, data);
    s.sync_pressure();
    assert!(
        s.stats.pressure.spill_restores >= 1,
        "unlock never restored: {:?}",
        s.stats.pressure
    );
}

/// A stale-epoch spill blob must not restore: re-binding the anchor
/// epoch after the blob was staged makes the anchor CMAC fail with a
/// typed integrity violation, not silently decrypt.
#[test]
fn stale_epoch_spill_blob_is_refused() {
    let (mut s, pid, _data) = locked_vault(0x31);
    squeeze_to_spill(&mut s);
    // Tamper one ciphertext byte in the staged region — the restore's
    // anchor CMAC must catch it.
    let raw = s.integrity.spill_region_raw().expect("region");
    let victim = raw.iter().position(|&b| b != 0).expect("nonzero byte");
    s.integrity
        .corrupt_spill_byte(victim as u64)
        .expect("plant corruption");
    s.set_onsoc_budget(None).expect("relief");
    s.on_unlock().expect("unlock");
    // The first demand fault needs the spilled tag page back on-SoC;
    // the restore's MAC check must refuse the corrupted blob.
    let err = s
        .touch_pages(pid, &[0])
        .expect_err("tampered spill blob must refuse");
    assert!(
        matches!(
            err,
            SentryError::IntegrityViolation { .. } | SentryError::Kernel(_)
        ),
        "tamper surfaced untyped: {err:?}"
    );
}

/// Power cut at each spill-path failpoint: the interrupted machine
/// recovers and converges byte-for-byte with the uninterrupted one,
/// and the spill region still never shows plaintext.
#[test]
fn power_cut_at_every_spill_step_recovers_byte_identically() {
    for site in ["spill.stage", "spill.anchor"] {
        let (mut s, pid, data) = locked_vault(0xC4);
        s.kernel.soc.failpoints.arm(FaultPlan::at_site(
            site,
            0,
            FaultAction::PowerCut { decay: None },
        ));
        let err = s
            .set_onsoc_budget(Some(sentry::soc::addr::PAGE_SIZE))
            .expect_err("armed squeeze must die");
        assert!(err.is_power_loss(), "{site}: {err:?}");
        // The cut landed outside any journaled transition: nothing to
        // roll forward, and the tag page is still resident (the commit
        // happens strictly after both failpoints).
        assert!(!s.txn_in_flight(), "{site} tore the journal");
        s.recover().expect("recovery");

        // Retry the squeeze: the spill completes this time (any orphan
        // ciphertext from a post-stage cut is simply overwritten).
        squeeze_to_spill(&mut s);
        if let Some(raw) = s.integrity.spill_region_raw() {
            assert_absent(&raw, &data, "vault plaintext");
        }

        // Relief, restore, converge.
        s.set_onsoc_budget(None).expect("relief");
        s.on_unlock().expect("unlock");
        let vpns: Vec<u64> = (0..PAGES as u64).collect();
        s.touch_pages(pid, &vpns).expect("drain");
        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).expect("read");
        assert_eq!(back, data, "{site} diverged");
        assert_eq!(s.residual_encrypted_pages(), 0);
    }
}

/// Power cut at the restore failpoint: the spilled page stays spilled
/// (anchor and ciphertext untouched), recovery clears any open journal,
/// and the retried unlock restores and converges.
#[test]
fn power_cut_mid_restore_leaves_the_blob_intact() {
    let (mut s, pid, data) = locked_vault(0xD9);
    squeeze_to_spill(&mut s);
    let spilled_before = s.integrity.spilled_pages();
    s.set_onsoc_budget(None).expect("relief");
    s.on_unlock().expect("unlock");
    s.kernel.soc.failpoints.arm(FaultPlan::at_site(
        "spill.restore",
        0,
        FaultAction::PowerCut { decay: None },
    ));
    // The first demand fault pulls the spilled tag page back; the armed
    // cut lands inside the restore.
    let err = s.touch_pages(pid, &[0]).expect_err("armed fault must die");
    assert!(err.is_power_loss());
    // The restore unwound: the page is still spilled, the anchor valid.
    assert_eq!(s.integrity.spilled_pages(), spilled_before);
    if s.txn_in_flight() {
        s.recover().expect("recovery");
    }
    let vpns: Vec<u64> = (0..PAGES as u64).collect();
    s.touch_pages(pid, &vpns).expect("drain");
    let mut back = vec![0u8; data.len()];
    s.read(pid, 0, &mut back).expect("read");
    assert_eq!(back, data);
    s.sync_pressure();
    assert!(s.stats.pressure.spill_restores >= 1);
}

/// The spill lever is bounded by configuration: with spill disabled the
/// squeeze still sheds and denies with typed errors, but the region is
/// never created and the store never silently loses a tag page.
#[test]
fn spill_disabled_squeeze_degrades_without_a_region() {
    let config = SentryConfig::tegra3_locked_l2(2)
        .with_pressure(sentry::core::PressureConfig::default().with_spill(false));
    let mut s = Sentry::new(Kernel::new(Soc::tegra3_small()), config).expect("sentry");
    let pid = s.kernel.spawn("vault");
    s.mark_sensitive(pid).expect("sensitive");
    let data = working_set(0x66);
    s.write(pid, 0, &data).expect("write");
    s.on_lock().expect("lock");
    s.set_onsoc_budget(Some(sentry::soc::addr::PAGE_SIZE))
        .expect("squeeze");
    s.sync_pressure();
    assert_eq!(s.stats.pressure.spills, 0, "spill ran while disabled");
    assert!(s.integrity.spill_region_raw().is_none(), "region created");
    assert!(s.pressure_level() >= PressureLevel::High);
    // Still fully functional after relief.
    s.set_onsoc_budget(None).expect("relief");
    s.on_unlock().expect("unlock");
    let vpns: Vec<u64> = (0..PAGES as u64).collect();
    s.touch_pages(pid, &vpns).expect("drain");
    let mut back = vec![0u8; data.len()];
    s.read(pid, 0, &mut back).expect("read");
    assert_eq!(back, data);
}
