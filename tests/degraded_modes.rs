//! Degraded-mode properties of the health governor: a sustained fault
//! regime on the accelerator or the storage device is *transparent* —
//! every read completes with the written bytes (watchdog abandonment,
//! CPU fallback, breaker routing, bounded disk retry), corrupt engine
//! output never surfaces, and an abandoned op's DMA bounce window is
//! zeroized before the CPU takes over, so a cold-boot dump taken after
//! a wedge-then-fallback cycle contains neither plaintext nor
//! keystream.

use proptest::prelude::*;
use sentry::attacks::coldboot::{dump_dram, dump_iram, search};
use sentry::core::config::{PageCipherMode, PipelineConfig, ReadaheadConfig};
use sentry::core::{HealthConfig, HealthState, Sentry, SentryConfig};
use sentry::crypto::pipeline::ctr_keystream;
use sentry::crypto::BitslicedAes;
use sentry::kernel::block::{RamDisk, SECTOR_SIZE};
use sentry::kernel::crypto_api::{CryptoApi, GenericAesEngine};
use sentry::kernel::dmcrypt::DmCrypt;
use sentry::kernel::Kernel;
use sentry::soc::accel::AccelPowerState;
use sentry::soc::addr::{IRAM_BASE, PAGE_SIZE};
use sentry::soc::{FaultAction, FaultPlan, Soc};

const KEY: [u8; 16] = [0x4D; 16];
const VOLUME_SECTORS: u64 = 64;
const READ_SECTORS: usize = 16;

/// A CTR-mode pipelined volume (awake accelerator) holding
/// deterministic seeded content.
fn volume(seed: u64) -> (CryptoApi, Soc, RamDisk, DmCrypt, Vec<u8>) {
    let mut api = CryptoApi::new();
    api.register(Box::new(GenericAesEngine::new(0)));
    api.preferred_mut()
        .unwrap()
        .set_mode(PageCipherMode::Ctr)
        .unwrap();
    let mut soc = Soc::tegra3_small();
    soc.accel.state = AccelPowerState::Awake;
    let dm = DmCrypt::with_preferred_cipher();
    dm.enable_pipeline(PipelineConfig::enabled());
    dm.set_key(&mut api, &mut soc, &KEY).unwrap();
    let mut disk = RamDisk::new(VOLUME_SECTORS);
    let data: Vec<u8> = (0..VOLUME_SECTORS as usize * SECTOR_SIZE)
        .map(|i| (i as u64).wrapping_mul(seed | 1).wrapping_shr(3) as u8)
        .collect();
    dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();
    (api, soc, disk, dm, data)
}

/// Any sustained accelerator misbehaviour: wedges (finite or forever),
/// corrupt status words, or a slowed clock — at a steady rate, in a
/// burst, or persistently.
fn accel_plan() -> impl Strategy<Value = FaultPlan> {
    let action = prop_oneof![
        Just(FaultAction::AccelWedge { wedge_ns: u64::MAX }),
        (10_000u64..50_000_000).prop_map(|wedge_ns| FaultAction::AccelWedge { wedge_ns }),
        Just(FaultAction::AccelCorrupt),
        (2u32..32).prop_map(|factor| FaultAction::AccelSlow { factor }),
    ];
    let regime = prop_oneof![
        (1u64..4).prop_map(|p| (0u64, p, 0u64)),             // rate
        ((0u64..3), (1u64..5)).prop_map(|(a, l)| (a, 0, l)), // burst
        Just((0u64, 0, u64::MAX)),                           // persistent
    ];
    (action, regime).prop_map(|(action, (after, period, len))| {
        if period > 0 {
            FaultPlan::at_rate("accel.submit", period, action)
        } else if len == u64::MAX {
            FaultPlan::at_site("accel.submit", 0, action).persistent()
        } else {
            FaultPlan::burst("accel.submit", after, len, action)
        }
    })
}

/// Transient storage trouble the retry budget can always absorb: fault
/// rates with a clean retry slot (period ≥ 2), fault bursts no longer
/// than the budget, or latency stalls at any rate.
fn disk_plan() -> impl Strategy<Value = FaultPlan> {
    prop_oneof![
        (2u64..6).prop_map(|p| FaultPlan::at_rate("disk.read", p, FaultAction::DiskError)),
        ((0u64..3), (1u64..4)).prop_map(|(a, l)| FaultPlan::burst(
            "disk.read",
            a,
            l,
            FaultAction::DiskError
        )),
        ((1u64..4), (1_000u64..200_000)).prop_map(|(p, stall_ns)| FaultPlan::at_rate(
            "disk.read",
            p,
            FaultAction::DiskStall { stall_ns }
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// Fallback equivalence on the dm-crypt read path: under *any*
    /// seeded sustained fault regime, every read of the volume returns
    /// the written bytes — during the regime and after it lifts — and
    /// no disk retry budget is ever exhausted.
    #[test]
    fn any_sustained_fault_regime_is_byte_transparent(
        plan in prop_oneof![accel_plan(), disk_plan()],
        seed in 1u64..u64::MAX,
    ) {
        let (mut api, mut soc, mut disk, dm, data) = volume(seed);
        soc.failpoints.arm(plan);
        for chunk in 0..VOLUME_SECTORS as usize / READ_SECTORS {
            let mut back = vec![0u8; READ_SECTORS * SECTOR_SIZE];
            let sector = (chunk * READ_SECTORS) as u64;
            dm.read(&mut api, &mut soc, &mut disk, sector, &mut back)
                .expect("read completes under the fault regime");
            let lo = chunk * READ_SECTORS * SECTOR_SIZE;
            prop_assert_eq!(&back[..], &data[lo..lo + back.len()]);
        }
        soc.failpoints.disarm();
        // The regime lifts: after the probe interval the end state is
        // still byte-identical (the breaker may close on the way).
        soc.clock.advance(HealthConfig::default().probe_after_ns);
        for chunk in 0..VOLUME_SECTORS as usize / READ_SECTORS {
            let mut back = vec![0u8; READ_SECTORS * SECTOR_SIZE];
            let sector = (chunk * READ_SECTORS) as u64;
            dm.read(&mut api, &mut soc, &mut disk, sector, &mut back).expect("post-regime read");
            let lo = chunk * READ_SECTORS * SECTOR_SIZE;
            prop_assert_eq!(&back[..], &data[lo..lo + back.len()]);
        }
        let health = dm.health_stats(soc.clock.now_ns());
        prop_assert_eq!(health.disk.exhausted, 0);
    }

    /// The same transparency across a lifecycle unlock: an accelerator
    /// regime armed over the unlock and its resume never changes the
    /// plaintext an application reads back.
    #[test]
    fn lifecycle_unlock_survives_any_accel_regime(
        plan in accel_plan(),
        tag in any::<u8>(),
    ) {
        let config = SentryConfig::tegra3_locked_l2(2)
            .with_cipher_mode(PageCipherMode::Ctr)
            .with_pipeline(PipelineConfig::enabled())
            .with_readahead(ReadaheadConfig::with_cluster(4).sweep_budget(0));
        let mut sentry = Sentry::new(Kernel::new(Soc::tegra3_small()), config).expect("sentry");
        let app = sentry.kernel.spawn("vault");
        sentry.mark_sensitive(app).expect("mark sensitive");
        let page_len = usize::try_from(PAGE_SIZE).unwrap();
        let images: Vec<Vec<u8>> = (0..8u64)
            .map(|vpn| (0..page_len).map(|i| (i as u8).wrapping_mul(31) ^ tag ^ vpn as u8).collect())
            .collect();
        for (vpn, img) in images.iter().enumerate() {
            sentry.write(app, vpn as u64 * PAGE_SIZE, img).expect("write page");
        }
        sentry.on_lock().expect("lock");
        sentry.kernel.soc.failpoints.arm(plan);
        sentry.on_unlock().expect("unlock under fault regime");
        let mut buf = vec![0u8; page_len];
        for (vpn, img) in images.iter().enumerate() {
            sentry.read(app, vpn as u64 * PAGE_SIZE, &mut buf).expect("read page");
            prop_assert_eq!(&buf, img, "page {} diverged", vpn);
        }
        sentry.kernel.soc.failpoints.disarm();
    }
}

/// Deterministic breaker walk on dm-crypt: wedge every submit — the
/// watchdog abandons exactly `trip_failures` ops, the breaker opens (no
/// further deadline is ever burned), and once the storm lifts two
/// half-open probes close it again.
#[test]
fn dmcrypt_breaker_trips_and_recovers() {
    let (mut api, mut soc, mut disk, dm, data) = volume(7);
    let defaults = HealthConfig::default();
    soc.failpoints.arm(FaultPlan::at_rate(
        "accel.submit",
        1,
        FaultAction::AccelWedge { wedge_ns: u64::MAX },
    ));
    for _ in 0..6 {
        let mut back = vec![0u8; READ_SECTORS * SECTOR_SIZE];
        dm.read(&mut api, &mut soc, &mut disk, 0, &mut back)
            .expect("read under wedge storm");
        assert_eq!(&back[..], &data[..back.len()]);
    }
    soc.failpoints.disarm();
    assert_eq!(dm.health_state(), HealthState::Open);
    let mid = dm.health_stats(soc.clock.now_ns());
    assert_eq!(mid.timeouts, u64::from(defaults.trip_failures));
    assert_eq!(mid.trips, 1);
    assert!(mid.abandoned_bytes > 0);
    assert!(mid.fallback_crypt_bytes > 0);

    // Cool down past the probe interval; the configured run of probe
    // successes closes the breaker.
    soc.clock.advance(defaults.probe_after_ns);
    for _ in 0..defaults.probe_successes {
        let mut back = vec![0u8; READ_SECTORS * SECTOR_SIZE];
        dm.read(&mut api, &mut soc, &mut disk, 0, &mut back)
            .expect("probe read");
        assert_eq!(&back[..], &data[..back.len()]);
    }
    assert_eq!(dm.health_state(), HealthState::Healthy);
    let after = dm.health_stats(soc.clock.now_ns());
    assert_eq!(after.recoveries, 1);
    assert_eq!(after.probes, u64::from(defaults.probe_successes));
    assert!(after.time_degraded_ns > 0);
}

/// The lifecycle governor walks the same machine: a persistent wedge
/// across an unlock's clustered decrypt batches burns exactly
/// `trip_failures` watchdogs, trips the breaker, and routes the
/// remaining batches over the CPU path — with every page intact.
#[test]
fn lifecycle_breaker_routes_unlock_batches() {
    let config = SentryConfig::tegra3_locked_l2(2)
        .with_cipher_mode(PageCipherMode::Ctr)
        .with_pipeline(PipelineConfig::enabled())
        .with_readahead(ReadaheadConfig::with_cluster(4).sweep_budget(0));
    let mut sentry = Sentry::new(Kernel::new(Soc::tegra3_small()), config).expect("sentry");
    let app = sentry.kernel.spawn("vault");
    sentry.mark_sensitive(app).expect("mark sensitive");
    let page_len = usize::try_from(PAGE_SIZE).unwrap();
    let images: Vec<Vec<u8>> = (0..16u64)
        .map(|vpn| vec![0xC0u8 ^ vpn as u8; page_len])
        .collect();
    for (vpn, img) in images.iter().enumerate() {
        sentry
            .write(app, vpn as u64 * PAGE_SIZE, img)
            .expect("write page");
    }
    sentry.on_lock().expect("lock");
    sentry.kernel.soc.failpoints.arm(FaultPlan::at_rate(
        "accel.submit",
        1,
        FaultAction::AccelWedge { wedge_ns: u64::MAX },
    ));
    sentry.on_unlock().expect("unlock");
    let mut buf = vec![0u8; page_len];
    for (vpn, img) in images.iter().enumerate() {
        sentry
            .read(app, vpn as u64 * PAGE_SIZE, &mut buf)
            .expect("read page");
        assert_eq!(&buf, img);
    }
    sentry.kernel.soc.failpoints.disarm();
    sentry.sync_health();
    let defaults = HealthConfig::default();
    assert_eq!(
        sentry.stats.health.timeouts,
        u64::from(defaults.trip_failures)
    );
    assert_eq!(sentry.stats.health.trips, 1);
    assert!(
        sentry.stats.batch_fallback_breaker_open >= 1,
        "post-trip batches must route over the open breaker"
    );
}

/// Bounded disk retry: a fault rate with a clean retry slot recovers
/// transparently; a persistently failing device exhausts the budget and
/// surfaces a typed error instead of hanging.
#[test]
fn disk_retry_budget_is_bounded() {
    let (mut api, mut soc, mut disk, dm, data) = volume(11);
    soc.failpoints
        .arm(FaultPlan::at_rate("disk.read", 2, FaultAction::DiskError));
    let mut back = vec![0u8; 8 * SECTOR_SIZE];
    dm.read(&mut api, &mut soc, &mut disk, 0, &mut back)
        .expect("transient fault recovered");
    assert_eq!(&back[..], &data[..back.len()]);
    soc.failpoints.disarm();
    let mid = dm.health_stats(soc.clock.now_ns());
    assert_eq!(mid.disk.recovered, 1);
    assert_eq!(mid.disk.exhausted, 0);

    // A device that fails every request exhausts the budget.
    soc.failpoints
        .arm(FaultPlan::at_site("disk.read", 0, FaultAction::DiskError).persistent());
    let err = dm.read(&mut api, &mut soc, &mut disk, 0, &mut back);
    assert!(err.is_err(), "persistent disk failure must surface");
    soc.failpoints.disarm();
    let after = dm.health_stats(soc.clock.now_ns());
    assert_eq!(after.disk.exhausted, 1);
    assert_eq!(
        after.disk.attempts,
        mid.disk.attempts + u64::from(HealthConfig::default().max_disk_retries) + 1
    );
}

/// Zeroize audit on the abandonment path: after a wedge-then-fallback
/// read the DMA bounce window has been wiped, so a cold-boot dump of
/// every DRAM byte plus iRAM holds neither the returned plaintext nor
/// any sector keystream.
#[test]
fn wedge_then_fallback_leaves_nothing_for_cold_boot() {
    let mut api = CryptoApi::new();
    api.register(Box::new(GenericAesEngine::new(0)));
    api.preferred_mut()
        .unwrap()
        .set_mode(PageCipherMode::Ctr)
        .unwrap();
    let mut soc = Soc::tegra3_small();
    soc.accel.state = AccelPowerState::Awake;
    let dm = DmCrypt::with_preferred_cipher();
    dm.enable_pipeline(PipelineConfig::enabled());
    dm.set_key(&mut api, &mut soc, &KEY).unwrap();
    let mut disk = RamDisk::new(256);

    let sentinel = b"SENTRY-DEGRADED-PLAINTEXT-SENTINEL......";
    let data: Vec<u8> = sentinel
        .iter()
        .copied()
        .cycle()
        .take(32 * SECTOR_SIZE)
        .collect();
    dm.write(&mut api, &mut soc, &mut disk, 0, &data).unwrap();

    // Wedge every descriptor: the read completes via watchdog
    // abandonment + CPU fallback, leaving an abandoned transfer behind.
    soc.failpoints.arm(FaultPlan::at_rate(
        "accel.submit",
        1,
        FaultAction::AccelWedge { wedge_ns: u64::MAX },
    ));
    let mut back = vec![0u8; 16 * SECTOR_SIZE];
    dm.read(&mut api, &mut soc, &mut disk, 0, &mut back)
        .expect("wedged read falls back");
    soc.failpoints.disarm();
    assert_eq!(&back[..], &data[..back.len()]);
    let health = dm.health_stats(soc.clock.now_ns());
    assert!(health.timeouts >= 1, "the wedge must have been abandoned");

    // Cold-boot scan of the frozen image: the abandoned bounce window
    // must have been zeroized and no keystream may be resident.
    let mut dump = dump_dram(&mut soc);
    dump.push((IRAM_BASE, dump_iram(&soc)));
    let bits = BitslicedAes::new(&KEY).unwrap();
    for sector in 0..256u64 {
        let ks = ctr_keystream(&bits, &DmCrypt::sector_iv(sector), 64);
        assert!(
            search(&dump, &ks[..32]).is_empty(),
            "keystream for sector {sector} resident after abandonment"
        );
    }
    assert!(
        search(&dump, &sentinel[..32]).is_empty(),
        "plaintext sentinel resident after wedge-then-fallback"
    );
}
