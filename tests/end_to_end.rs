//! End-to-end integration: the full Sentry stack against the full
//! attack suite, spanning every crate in the workspace.

use sentry::attacks::busmon::BusMonitor;
use sentry::attacks::coldboot;
use sentry::attacks::dmaattack::dma_dump;
use sentry::core::{DeviceState, Sentry, SentryConfig};
use sentry::kernel::Kernel;
use sentry::soc::addr::{DRAM_BASE, IRAM_BASE, IRAM_SIZE, PAGE_SIZE};
use sentry::soc::dram::PowerEvent;
use sentry::soc::Soc;

const SECRET: &[u8] = b"TOP-SECRET-CUSTOMER-DATABASE-ROW";

fn protected_device() -> (Sentry, u32) {
    let kernel = Kernel::new(Soc::tegra3_small());
    let mut sentry = Sentry::new(kernel, SentryConfig::tegra3_locked_l2(2)).unwrap();
    let pid = sentry.kernel.spawn("crm-app");
    sentry.mark_sensitive(pid).unwrap();
    for vpn in 0..16u64 {
        sentry
            .write(pid, vpn * PAGE_SIZE, &SECRET.repeat(128))
            .unwrap();
    }
    (sentry, pid)
}

#[test]
fn locked_device_survives_all_three_attacks() {
    let (mut sentry, pid) = protected_device();
    sentry.on_lock().unwrap();
    assert_eq!(sentry.state(), DeviceState::Locked);

    // The device suspends after locking: caches are cleaned, so the
    // encrypted pages are physically in DRAM and subsequent background
    // page-ins produce real (ciphertext) bus traffic to observe.
    sentry.kernel.soc.cache_maintenance_flush();

    // Attack 1: bus monitoring while background work happens.
    let mon = BusMonitor::attach_new(&mut sentry.kernel.soc.bus);
    let mut buf = vec![0u8; 256];
    for vpn in 0..16u64 {
        sentry.read(pid, vpn * PAGE_SIZE, &mut buf).unwrap();
    }
    assert!(mon.find_in_traffic(SECRET).is_empty(), "bus monitor foiled");
    assert!(!mon.is_empty(), "there was real traffic to observe");

    // Attack 2: DMA sweep of all physical memory.
    let dram_size = sentry.kernel.soc.dram.size();
    let dump = dma_dump(&mut sentry.kernel.soc, DRAM_BASE, dram_size, 4096);
    assert!(dump.search(SECRET).is_empty(), "DMA attack foiled");
    let iram = dma_dump(&mut sentry.kernel.soc, IRAM_BASE, IRAM_SIZE, 4096);
    assert!(iram.search(SECRET).is_empty());

    // Attack 3: cold boot via reflash — nothing recoverable, not even
    // the AES key schedule (it lives in a locked way, zeroed at boot).
    let findings =
        coldboot::attack(&mut sentry.kernel.soc, PowerEvent::ReflashTap, SECRET).unwrap();
    assert!(!findings.recovered_anything(), "cold boot foiled");
}

#[test]
fn unprotected_app_on_same_device_is_recoverable() {
    // Control experiment: a non-sensitive app's data falls to cold boot.
    let kernel = Kernel::new(Soc::tegra3_small());
    let mut sentry = Sentry::new(kernel, SentryConfig::tegra3_locked_l2(2)).unwrap();
    let pid = sentry.kernel.spawn("calculator");
    sentry.write(pid, 0, &SECRET.repeat(128)).unwrap();
    sentry.on_lock().unwrap();
    sentry.kernel.soc.cache_maintenance_flush();
    let findings =
        coldboot::attack(&mut sentry.kernel.soc, PowerEvent::ReflashTap, SECRET).unwrap();
    assert!(
        !findings.pattern_hits.is_empty(),
        "unprotected data must be recoverable — otherwise the protected case proves nothing"
    );
}

#[test]
fn data_survives_many_lock_unlock_cycles_with_background_work() {
    let (mut sentry, pid) = protected_device();
    let mut expected: Vec<Vec<u8>> = (0..16u64).map(|_| SECRET.repeat(128)).collect();

    for cycle in 0..5u64 {
        sentry.on_lock().unwrap();
        // Background mutation while locked.
        let tag = format!("cycle-{cycle}-update");
        sentry
            .write(pid, (cycle % 16) * PAGE_SIZE, tag.as_bytes())
            .unwrap();
        expected[(cycle % 16) as usize][..tag.len()].copy_from_slice(tag.as_bytes());
        sentry.on_unlock().unwrap();
    }

    for (vpn, exp) in expected.iter().enumerate() {
        let mut buf = vec![0u8; exp.len()];
        sentry.read(pid, vpn as u64 * PAGE_SIZE, &mut buf).unwrap();
        assert_eq!(&buf, exp, "page {vpn} corrupted across cycles");
    }
}

#[test]
fn volatile_key_rotates_across_reboots_making_old_ciphertext_useless() {
    let (mut sentry, _pid) = protected_device();
    let key1 = sentry.volatile_key().read(&mut sentry.kernel.soc).unwrap();
    sentry.on_lock().unwrap();

    // Reboot the device: firmware zeroes on-SoC memory including the
    // volatile key; a new Sentry generates a fresh key.
    sentry
        .kernel
        .soc
        .power_cycle(PowerEvent::ReflashTap)
        .unwrap();
    let after = sentry.volatile_key().read(&mut sentry.kernel.soc).unwrap();
    assert_eq!(after, [0u8; 32], "old key is gone");
    assert_ne!(key1, [0u8; 32]);
}

#[test]
fn nexus_and_tegra_configurations_both_protect() {
    for (soc, config) in [
        (Soc::tegra3_small(), SentryConfig::tegra3_iram()),
        (Soc::nexus4_small(), SentryConfig::nexus4()),
    ] {
        let kernel = Kernel::new(soc);
        let mut sentry = Sentry::new(kernel, config).unwrap();
        let pid = sentry.kernel.spawn("app");
        sentry.mark_sensitive(pid).unwrap();
        sentry.write(pid, 0, &SECRET.repeat(16)).unwrap();
        sentry.on_lock().unwrap();
        sentry.kernel.soc.cache_maintenance_flush();
        let leaked = sentry
            .kernel
            .soc
            .dram
            .iter_frames()
            .any(|(_, f)| f.windows(SECRET.len()).any(|w| w == SECRET));
        assert!(!leaked);
        sentry.on_unlock().unwrap();
        let mut buf = vec![0u8; SECRET.len()];
        sentry.read(pid, 0, &mut buf).unwrap();
        assert_eq!(buf, SECRET);
    }
}
