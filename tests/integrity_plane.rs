//! Property tests for the integrity plane: *any* single-bit
//! manipulation of encrypted DRAM — in the ciphertext, in the on-SoC
//! tag store, or as a stale-epoch replay — must surface as a typed
//! [`SentryError::IntegrityViolation`] on the next decrypt, never as
//! silently wrong plaintext. The dm-crypt sector MAC gets the same
//! treatment on the storage side.

use proptest::prelude::*;
use sentry::attacks::faultmatrix::{public_page, secret_page, Scenario};
use sentry::attacks::tamper::{flip_bit, raw_read_page, raw_write_page};
use sentry::core::{Sentry, SentryError};
use sentry::kernel::block::{BlockDevice, RamDisk, SECTOR_SIZE};
use sentry::kernel::crypto_api::{CryptoApi, GenericAesEngine};
use sentry::kernel::dmcrypt::DmCrypt;
use sentry::kernel::pagetable::Backing;
use sentry::kernel::{KernelError, Pid};
use sentry::soc::{SimClock, Soc, PAGE_SIZE};

/// The DRAM frame currently backing `(pid, vpn)`.
fn frame_of(s: &Sentry, pid: Pid, vpn: u64) -> u64 {
    match s.kernel.procs[&pid]
        .page_table
        .get(vpn)
        .expect("target vpn mapped")
        .backing
    {
        Backing::Dram(frame) => frame,
        Backing::OnSoc(_) => panic!("target page unexpectedly on-SoC"),
    }
}

/// The plaintext image the scenario builder wrote to a vault page.
fn expected_page(scn: &Scenario, vpn: u64) -> Vec<u8> {
    if vpn < scn.secret_pages {
        secret_page(vpn, 0x11)
    } else {
        public_page()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, .. ProptestConfig::default() })]

    /// Flip any single ciphertext bit of any encrypted vault page while
    /// the device is locked. Whatever decrypt path consumes that page
    /// after unlock (eager DMA batch for vpn 2, readahead for cluster
    /// mates, on-demand for the rest), the explicit read of the
    /// tampered page must report a typed violation, every other page
    /// must read back byte-for-byte intact, and the frame must end up
    /// quarantined.
    #[test]
    fn any_single_ciphertext_bit_flip_is_detected(
        vpn in 0u64..4,
        offset in 0u64..4096,
        bit in 0u8..8,
    ) {
        let scn = Scenario::tegra3(0x1B17 ^ offset);
        let (mut s, actors) = scn.build().unwrap();

        s.on_lock().unwrap();
        s.kernel.soc.cache_maintenance_flush();
        let frame = frame_of(&s, actors.vault, vpn);
        flip_bit(&mut s.kernel.soc, frame, offset, bit);

        // The unlock batch itself must survive a poisoned DMA page:
        // quarantine, not a hard failure.
        s.on_unlock().unwrap();

        for probe in 0..=scn.secret_pages {
            let mut page = vec![0u8; PAGE_SIZE as usize];
            let got = s.read(actors.vault, probe * PAGE_SIZE, &mut page);
            if probe == vpn {
                let err = got.expect_err("tampered page read must fail");
                prop_assert!(err.is_integrity_violation(), "probe {probe}: {err}");
            } else {
                prop_assert!(got.is_ok(), "survivor {probe}: {got:?}");
                prop_assert!(
                    page == expected_page(&scn, probe),
                    "survivor {probe} returned wrong bytes"
                );
            }
        }
        prop_assert!(s.integrity.is_quarantined(frame));

        // Liveness: the system keeps locking and unlocking around the
        // poisoned page.
        s.on_lock().unwrap();
        s.on_unlock().unwrap();
        let mut page = vec![0u8; PAGE_SIZE as usize];
        let again = s.read(actors.vault, vpn * PAGE_SIZE, &mut page);
        prop_assert!(
            again.expect_err("still poisoned").is_integrity_violation()
        );
    }

    /// Flip any single bit of the *stored tag* in the on-SoC tag store
    /// instead of the ciphertext: the mismatch must be caught from that
    /// side too.
    #[test]
    fn any_tag_store_bit_flip_is_detected(byte in 0usize..8, bit in 0u8..8) {
        let scn = Scenario::tegra3(0x7A65);
        let (mut s, actors) = scn.build().unwrap();

        s.on_lock().unwrap();
        s.kernel.soc.cache_maintenance_flush();
        let frame = frame_of(&s, actors.vault, 3);
        let slot = s
            .integrity
            .tag_slot_addr(frame)
            .expect("locked page must have a stored tag");
        let mut tag = [0u8; 8];
        s.kernel.soc.mem_read(slot, &mut tag).unwrap();
        tag[byte] ^= 1 << bit;
        s.kernel.soc.mem_write(slot, &tag).unwrap();

        s.on_unlock().unwrap();
        let mut page = vec![0u8; PAGE_SIZE as usize];
        let err = s
            .read(actors.vault, 3 * PAGE_SIZE, &mut page)
            .expect_err("corrupted tag must fail the ciphertext");
        prop_assert!(err.is_integrity_violation(), "{err}");
        prop_assert!(s.integrity.is_quarantined(frame));
    }

    /// Flip any single ciphertext bit of any sector on the encrypted
    /// volume: dm-crypt must reject the whole request with a typed
    /// [`KernelError::SectorTamper`] naming the bad sector, before any
    /// byte of it is decrypted.
    #[test]
    fn dm_crypt_rejects_any_single_bit_flip_on_disk(
        sector in 0u64..8,
        offset in 0usize..512,
        bit in 0u8..8,
    ) {
        let mut api = CryptoApi::new();
        api.register(Box::new(GenericAesEngine::new(0)));
        let mut soc = Soc::tegra3_small();
        let dm = DmCrypt::with_preferred_cipher();
        dm.set_key(&mut api, &mut soc, &[9u8; 16]).unwrap();
        let mut disk = RamDisk::new(64);

        let data: Vec<u8> = (0..SECTOR_SIZE * 8).map(|i| (i % 251) as u8).collect();
        dm.write(&mut api, &mut soc, &mut disk, 16, &data).unwrap();

        let mut raw = vec![0u8; SECTOR_SIZE];
        let mut clock = SimClock::new();
        disk.read_sectors(16 + sector, &mut raw, &mut clock).unwrap();
        raw[offset] ^= 1 << bit;
        disk.write_sectors(16 + sector, &raw, &mut clock).unwrap();

        let mut back = vec![0u8; data.len()];
        let err = dm
            .read(&mut api, &mut soc, &mut disk, 16, &mut back)
            .expect_err("tampered volume read must fail");
        prop_assert!(
            matches!(err, KernelError::SectorTamper { sector: bad, .. } if bad == 16 + sector),
            "{err}"
        );
    }
}

/// Replaying authentic-but-stale ciphertext from an earlier lock epoch
/// is rejected: the IV binds the epoch, so yesterday's valid ciphertext
/// fails today's tag.
#[test]
fn stale_epoch_replay_is_rejected() {
    let scn = Scenario::tegra3(0x5EED);
    let (mut s, actors) = scn.build().unwrap();

    // Epoch 1: record the authentic ciphertext of vpn 3.
    s.on_lock().unwrap();
    s.kernel.soc.cache_maintenance_flush();
    let frame = frame_of(&s, actors.vault, 3);
    let stale = raw_read_page(&mut s.kernel.soc, frame);

    // The victim decrypts the page, then the device locks again —
    // re-encrypting under epoch 2.
    s.on_unlock().unwrap();
    s.touch_pages(actors.vault, &[3]).unwrap();
    s.on_lock().unwrap();
    s.kernel.soc.cache_maintenance_flush();

    // Replay the epoch-1 image over the epoch-2 frame.
    let frame2 = frame_of(&s, actors.vault, 3);
    raw_write_page(&mut s.kernel.soc, frame2, &stale);

    s.on_unlock().unwrap();
    let mut page = vec![0u8; PAGE_SIZE as usize];
    let err = s
        .read(actors.vault, 3 * PAGE_SIZE, &mut page)
        .expect_err("stale ciphertext must not decrypt");
    assert!(err.is_integrity_violation(), "{err}");
    assert!(s.integrity.is_quarantined(frame2));
}

/// The boot-time audit inside [`Sentry::recover`] quarantines a
/// tampered at-rest frame even when no journal entry mentions it, so a
/// crashed-then-tampered device never rolls the damage forward into
/// plaintext.
#[test]
fn boot_time_audit_quarantines_tampered_at_rest_frames() {
    let scn = Scenario::tegra3(0xB007);
    let (mut s, actors) = scn.build().unwrap();

    s.on_lock().unwrap();
    s.kernel.soc.cache_maintenance_flush();
    let frame = frame_of(&s, actors.vault, 3);
    flip_bit(&mut s.kernel.soc, frame, 2040, 1);

    // Power comes back with no transition in flight: the journal is
    // empty, so only the audit can notice the rot.
    let report = s.recover().unwrap();
    assert_eq!(report.journaled, 0, "no journal entries expected");
    assert!(
        report.quarantined >= 1,
        "audit missed the tamper: {report:?}"
    );
    assert!(s.integrity.is_quarantined(frame));

    s.on_unlock().unwrap();
    let mut page = vec![0u8; PAGE_SIZE as usize];
    let err = s
        .read(actors.vault, 3 * PAGE_SIZE, &mut page)
        .expect_err("audited-out page must stay poisoned");
    assert!(
        matches!(err, SentryError::IntegrityViolation { .. }),
        "{err}"
    );

    // Every untampered page survives the audit untouched.
    for probe in 0..=scn.secret_pages {
        if probe == 3 {
            continue;
        }
        let mut page = vec![0u8; PAGE_SIZE as usize];
        s.read(actors.vault, probe * PAGE_SIZE, &mut page).unwrap();
        assert_eq!(page, expected_page(&scn, probe), "survivor {probe}");
    }
}
