//! Securing persistent state: a dm-crypt volume whose key is derived
//! from the boot password + the TrustZone fuse, encrypted with AES On
//! SoC so the cryptographic state never reaches DRAM (§7, "Securing
//! Persistent State").
//!
//! ```text
//! cargo run --example dmcrypt_volume
//! ```

use sentry::core::aes_onsoc::build_engine;
use sentry::core::config::OnSocBackend;
use sentry::core::keys::derive_persistent_key;
use sentry::core::onsoc::OnSocStore;
use sentry::kernel::bufcache::{Volume, VolumeCrypto, CACHE_BLOCK};
use sentry::kernel::dmcrypt::DmCrypt;
use sentry::kernel::vfs::SimpleFs;
use sentry::kernel::Kernel;
use sentry::soc::Soc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kernel = Kernel::new(Soc::tegra3_small());

    // Derive the persistent root key: user password + hardware fuse,
    // stretched inside the secure world.
    let key = derive_persistent_key(&mut kernel.soc, "correct horse battery staple")?;
    println!("persistent root key derived from password + TrustZone fuse");

    // Register AES On SoC; dm-crypt picks it up via CryptoAPI priority.
    let mut store = OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 1 }, &mut kernel.soc)?;
    let engine = build_engine(&mut store, &mut kernel.soc, &key[..16])?;
    kernel.crypto.register(Box::new(engine));
    println!(
        "cipher registry (priority order): {:?}",
        kernel.crypto.listing()
    );

    // Mount an encrypted volume and use it through the file layer.
    let dm = DmCrypt::with_preferred_cipher();
    dm.set_key(&mut kernel.crypto, &mut kernel.soc, &key[..16])?;
    let mut vol = Volume::new(8192, VolumeCrypto::DmCrypt(dm), 256);
    let mut fs = SimpleFs::new();
    fs.create(&vol, "diary.txt", 64 * 1024)?;

    let mut block = vec![0u8; CACHE_BLOCK];
    block[..34].copy_from_slice(b"Dear diary, nobody must read this.");
    fs.write(
        &mut vol,
        &mut kernel.crypto,
        &mut kernel.soc,
        "diary.txt",
        0,
        &block,
        false,
    )?;

    let mut back = vec![0u8; CACHE_BLOCK];
    fs.read(
        &mut vol,
        &mut kernel.crypto,
        &mut kernel.soc,
        "diary.txt",
        0,
        &mut back,
        true,
    )?;
    assert_eq!(&back[..34], &block[..34]);
    println!("file round-trips through dm-crypt + AES On SoC");

    // The raw device holds ciphertext only.
    let mut clock = sentry::soc::SimClock::new();
    let mut raw = vec![0u8; 512];
    use sentry::kernel::block::BlockDevice;
    vol.disk.read_sectors(0, &mut raw, &mut clock)?;
    println!(
        "raw device bytes are ciphertext: {}",
        !raw.windows(10).any(|w| w == b"Dear diary")
    );

    // Same password next boot -> same key; wrong password -> wrong key.
    let again = derive_persistent_key(&mut kernel.soc, "correct horse battery staple")?;
    let wrong = derive_persistent_key(&mut kernel.soc, "hunter2")?;
    println!(
        "key derivation deterministic: {} / wrong password differs: {}",
        key == again,
        key != wrong
    );
    Ok(())
}
