//! Background computation while locked: an alpine-style mail reader
//! keeps polling for mail on a locked Tegra 3, its working set paged
//! through locked L2 cache ways while DRAM holds only ciphertext.
//!
//! ```text
//! cargo run --example background_mail
//! ```

use sentry::core::{Sentry, SentryConfig};
use sentry::kernel::Kernel;
use sentry::soc::addr::PAGE_SIZE;
use sentry::soc::Soc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = Kernel::new(Soc::tegra3_small());
    let mut sentry = Sentry::new(kernel, SentryConfig::tegra3_locked_l2(2))?;
    let pid = sentry.kernel.spawn("alpine");
    sentry.mark_sensitive(pid)?;

    // The mail spool: 32 pages of messages.
    for vpn in 0..32u64 {
        let msg = format!("Message {vpn}: meet at the usual place, bring the documents");
        sentry.write(pid, vpn * PAGE_SIZE, msg.as_bytes())?;
    }

    sentry.on_lock()?;
    println!("device locked; alpine keeps running in the background\n");

    // Poll for mail: read every message while locked, then append a
    // new one (background work writes too).
    let mut found = 0;
    let mut buf = vec![0u8; 64];
    for vpn in 0..32u64 {
        sentry.read(pid, vpn * PAGE_SIZE, &mut buf)?;
        if buf.starts_with(b"Message") {
            found += 1;
        }
    }
    sentry.write(
        pid,
        31 * PAGE_SIZE + 2048,
        b"Message 32: NEW mail arrived while locked",
    )?;

    let stats = sentry.pager.stats;
    println!("read {found}/32 messages while locked");
    println!(
        "pager: {} faults, {} page-ins, {} page-outs, {} KiB decrypted on-SoC",
        stats.faults,
        stats.pageins,
        stats.pageouts,
        stats.bytes_decrypted / 1024
    );

    // The security property: flush the cache, scan DRAM — no plaintext.
    sentry.kernel.soc.cache_maintenance_flush();
    let leaked = sentry
        .kernel
        .soc
        .dram
        .iter_frames()
        .any(|(_, frame)| frame.windows(7).any(|w| w == b"Message"));
    println!("plaintext in DRAM while locked: {leaked}");
    assert!(!leaked);

    // After unlock the new mail is there.
    sentry.on_unlock()?;
    let mut buf = vec![0u8; 42];
    sentry.read(pid, 31 * PAGE_SIZE + 2048, &mut buf)?;
    println!("after unlock: {:?}", String::from_utf8_lossy(&buf));
    Ok(())
}
