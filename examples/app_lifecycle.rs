//! The Android-app lifecycle experiment: run Google Maps through a full
//! lock → unlock → resume → scripted-run cycle on a simulated Nexus 4
//! and print the Figure 2/3/4/5 numbers for it.
//!
//! ```text
//! cargo run --example app_lifecycle
//! ```

use sentry::workloads::{app_catalog, run_app_cycle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("app          lock(s)  lockMB  resume(s)  resumeMB  overhead  lockJ");
    for app in app_catalog() {
        let r = run_app_cycle(&app)?;
        println!(
            "{:<12} {:>7.2}  {:>6.1}  {:>9.2}  {:>8.1}  {:>7.2}%  {:>5.2}",
            r.name,
            r.lock_secs,
            r.lock_mb,
            r.resume_secs,
            r.resume_mb,
            r.runtime_overhead * 100.0,
            r.lock_joules,
        );
    }
    println!("\n(paper anchors: Maps ~1.5 s resume for ~38 MB; overheads 0.2-4.3%;\n lock energy up to 2.3 J; all shapes proportional to MB moved)");
    Ok(())
}
