//! Quickstart: protect an app's memory through a lock/unlock cycle.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sentry::core::{Sentry, SentryConfig};
use sentry::kernel::Kernel;
use sentry::soc::Soc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated Tegra 3 with cache locking available, running the
    // kernel model, with Sentry installed on top (locked-L2 backend,
    // up to two ways).
    let kernel = Kernel::new(Soc::tegra3_small());
    let mut sentry = Sentry::new(kernel, SentryConfig::tegra3_locked_l2(2))?;

    // A sensitive application with some memory.
    let pid = sentry.kernel.spawn("com.example.mail");
    sentry.mark_sensitive(pid)?;
    let secret = b"Subject: offer letter -- CONFIDENTIAL";
    sentry.write(pid, 0x1000, secret)?;
    println!("wrote {} secret bytes to the app's memory", secret.len());

    // Screen locks: Sentry encrypts the app's pages in DRAM.
    let lock = sentry.on_lock()?;
    println!(
        "LOCK:   encrypted {} KiB in {:.1} ms (zero-thread drain {:.3} ms)",
        lock.bytes_encrypted / 1024,
        lock.duration_ns as f64 / 1e6,
        lock.zero_drain_ns as f64 / 1e6,
    );

    // Prove it: flush the cache and scan every DRAM frame.
    sentry.kernel.soc.cache_maintenance_flush();
    let mut leaked = false;
    for (_addr, frame) in sentry.kernel.soc.dram.iter_frames() {
        if frame.windows(12).any(|w| w == &secret[..12]) {
            leaked = true;
        }
    }
    println!("DRAM scan while locked: plaintext present = {leaked}");
    assert!(!leaked);

    // Unlock: pages decrypt lazily as the app touches them.
    sentry.on_unlock()?;
    let mut buf = vec![0u8; secret.len()];
    sentry.read(pid, 0x1000, &mut buf)?;
    assert_eq!(buf, secret);
    println!(
        "UNLOCK: read back intact after {} on-demand page decryptions",
        sentry.stats.ondemand_faults
    );
    Ok(())
}
