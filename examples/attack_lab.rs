//! The attack lab: mount every in-scope memory attack against an
//! unprotected device and against a Sentry-protected one, and compare.
//!
//! ```text
//! cargo run --example attack_lab
//! ```

use sentry::attacks::busmon::BusMonitor;
use sentry::attacks::coldboot;
use sentry::attacks::dmaattack::dma_dump;
use sentry::core::{Sentry, SentryConfig};
use sentry::kernel::crypto_api::{CipherEngine, GenericAesEngine};
use sentry::kernel::Kernel;
use sentry::soc::addr::{DRAM_BASE, IRAM_BASE, IRAM_SIZE};
use sentry::soc::dram::PowerEvent;
use sentry::soc::Soc;

const PIN_RECORD: &[u8] = b"PIN=4521;owner=alice";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== victim 1: stock device (secrets in DRAM) ==");
    let mut soc = Soc::tegra3_small();
    // A generic AES engine leaves its key schedule in kernel heap...
    let mut engine = GenericAesEngine::new(0);
    let disk_key = [0xC4u8; 16];
    engine.set_key(&mut soc, &disk_key)?;
    // ...and the lock screen keeps the PIN record in app memory.
    soc.mem_write(DRAM_BASE + (40 << 20), &PIN_RECORD.repeat(64))?;
    soc.cache_maintenance_flush();

    // DMA attack: no reboot needed, works on the PIN-locked device.
    let dump = dma_dump(&mut soc, DRAM_BASE + (39 << 20), 2 << 20, 4096);
    println!(
        "  DMA sweep: PIN record hits = {}",
        dump.search(PIN_RECORD).len()
    );

    // Bus monitor: watch the PIN cross the bus on a cache miss.
    let mon = BusMonitor::attach_new(&mut soc.bus);
    let mut buf = vec![0u8; 64];
    soc.mem_read(DRAM_BASE + (40 << 20), &mut buf)?;
    println!(
        "  bus monitor: PIN observed = {}",
        !mon.find_in_traffic(b"PIN=").is_empty()
    );

    // Cold boot (reflash): recover the *disk encryption key* itself.
    let findings = coldboot::attack(&mut soc, PowerEvent::ReflashTap, PIN_RECORD)?;
    let got_key = findings.keys.iter().any(|(_, k)| *k == disk_key);
    println!(
        "  cold boot: {} plaintext hits, AES key recovered via aeskeyfind = {got_key}",
        findings.pattern_hits.len()
    );

    println!("\n== victim 2: Sentry-protected device ==");
    let kernel = Kernel::new(Soc::tegra3_small());
    let mut sentry = Sentry::new(kernel, SentryConfig::tegra3_locked_l2(2))?;
    let pid = sentry.kernel.spawn("lockscreen");
    sentry.mark_sensitive(pid)?;
    sentry.write(pid, 0, &PIN_RECORD.repeat(64))?;
    sentry.on_lock()?;

    let mon = BusMonitor::attach_new(&mut sentry.kernel.soc.bus);
    // Background work happens while the attacker listens...
    let mut buf = vec![0u8; 64];
    sentry.read(pid, 0, &mut buf)?;
    println!(
        "  bus monitor while locked: PIN observed = {}",
        !mon.find_in_traffic(b"PIN=").is_empty()
    );

    let soc = &mut sentry.kernel.soc;
    let dram_size = soc.dram.size();
    let mut dump = dma_dump(soc, DRAM_BASE, dram_size, 4096);
    let iram_dump = dma_dump(soc, IRAM_BASE, IRAM_SIZE, 4096);
    dump.data.extend(iram_dump.data);
    println!(
        "  DMA sweep of all DRAM+iRAM: PIN hits = {}, TrustZone denials = {}",
        dump.search(PIN_RECORD).len(),
        dump.denied.len() + iram_dump.denied.len()
    );

    let findings = coldboot::attack(soc, PowerEvent::ReflashTap, PIN_RECORD)?;
    println!(
        "  cold boot: plaintext hits = {}, AES keys found = {}",
        findings.pattern_hits.len(),
        findings.keys.len()
    );
    assert!(!findings.recovered_anything());
    println!("\nevery attack that succeeded against the stock device failed against Sentry");
    Ok(())
}
